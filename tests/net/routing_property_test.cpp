// Property tests for the routing algorithms on random graphs, checked
// against brute-force enumeration.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "net/routing.h"

namespace hermes::net {
namespace {

Topology random_graph(std::mt19937_64& rng, int n, double edge_prob) {
  Topology t;
  for (int i = 0; i < n; ++i)
    t.add_node(NodeKind::kSwitch, "n" + std::to_string(i));
  // Spanning path for connectivity, then random extra edges.
  std::uniform_real_distribution<double> unit(0, 1);
  for (int i = 0; i + 1 < n; ++i)
    t.add_link(i, i + 1, 1e9, 1e-3 * (1 + static_cast<double>(rng() % 9)));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 2; j < n; ++j) {
      if (unit(rng) < edge_prob)
        t.add_link(i, j, 1e9,
                   1e-3 * (1 + static_cast<double>(rng() % 9)));
    }
  }
  return t;
}

// All loopless paths src->dst by DFS (graphs are small).
void all_paths(const Topology& t, NodeId at, NodeId dst,
               std::vector<char>& used, Path& current,
               std::vector<Path>& out) {
  if (at == dst) {
    out.push_back(current);
    return;
  }
  for (LinkId l : t.links_of(at)) {
    NodeId next = t.link(l).other(at);
    if (used[static_cast<std::size_t>(next)]) continue;
    used[static_cast<std::size_t>(next)] = 1;
    current.push_back(next);
    all_paths(t, next, dst, used, current, out);
    current.pop_back();
    used[static_cast<std::size_t>(next)] = 0;
  }
}

std::vector<Path> brute_force_paths(const Topology& t, NodeId src,
                                    NodeId dst) {
  std::vector<Path> out;
  std::vector<char> used(static_cast<std::size_t>(t.node_count()), 0);
  used[static_cast<std::size_t>(src)] = 1;
  Path current{src};
  all_paths(t, src, dst, used, current, out);
  return out;
}

class RoutingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingProperty, DijkstraMatchesBruteForceMinimum) {
  std::mt19937_64 rng(GetParam());
  Topology t = random_graph(rng, 7, 0.3);
  auto weight = propagation_delay();
  for (NodeId src = 0; src < t.node_count(); ++src) {
    for (NodeId dst = 0; dst < t.node_count(); ++dst) {
      if (src == dst) continue;
      auto sp = shortest_path(t, src, dst, weight);
      ASSERT_TRUE(sp.has_value());
      double best = std::numeric_limits<double>::infinity();
      for (const Path& p : brute_force_paths(t, src, dst))
        best = std::min(best, path_cost(t, p, weight));
      EXPECT_NEAR(path_cost(t, *sp, weight), best, 1e-12);
    }
  }
}

TEST_P(RoutingProperty, YenMatchesBruteForceTopK) {
  std::mt19937_64 rng(GetParam() ^ 0xABCDEF);
  Topology t = random_graph(rng, 6, 0.35);
  auto weight = propagation_delay();
  const int k = 4;
  NodeId src = 0;
  NodeId dst = t.node_count() - 1;
  auto yen = k_shortest_paths(t, src, dst, weight, k);
  auto brute = brute_force_paths(t, src, dst);
  std::sort(brute.begin(), brute.end(), [&](const Path& a, const Path& b) {
    return path_cost(t, a, weight) < path_cost(t, b, weight);
  });
  ASSERT_EQ(yen.size(),
            std::min<std::size_t>(static_cast<std::size_t>(k),
                                  brute.size()));
  for (std::size_t i = 0; i < yen.size(); ++i) {
    // Same cost at each rank (ties may reorder the concrete paths).
    EXPECT_NEAR(path_cost(t, yen[i], weight),
                path_cost(t, brute[i], weight), 1e-12)
        << "rank " << i;
    // Loopless.
    std::set<NodeId> uniq(yen[i].begin(), yen[i].end());
    EXPECT_EQ(uniq.size(), yen[i].size());
  }
}

TEST_P(RoutingProperty, EcmpEnumeratesAllMinimumCostPaths) {
  std::mt19937_64 rng(GetParam() ^ 0x5555);
  Topology t = random_graph(rng, 6, 0.4);
  auto weight = hop_count();  // hop count => many ties => real ECMP sets
  NodeId src = 0;
  NodeId dst = t.node_count() - 1;
  auto ecmp = ecmp_paths(t, src, dst, weight, 64);
  auto brute = brute_force_paths(t, src, dst);
  double best = std::numeric_limits<double>::infinity();
  for (const Path& p : brute) best = std::min(best, path_cost(t, p, weight));
  std::set<Path> expected;
  for (const Path& p : brute)
    if (path_cost(t, p, weight) == best) expected.insert(p);
  std::set<Path> got(ecmp.begin(), ecmp.end());
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty,
                         ::testing::Values(10, 20, 30, 40));

TEST(PathDatabaseFatTree, ServesEcmpSpreadsForHostPairs) {
  Topology t = fat_tree(4);
  PathDatabase db(t, 4, hop_count());
  auto hosts = t.hosts();
  // Inter-pod pair: 4 equal-cost paths exist and must all be served.
  const auto& paths = db.paths(hosts.front(), hosts.back());
  EXPECT_EQ(paths.size(), 4u);
  std::set<Path> uniq(paths.begin(), paths.end());
  EXPECT_EQ(uniq.size(), paths.size());
  for (const Path& p : paths) {
    EXPECT_EQ(p.front(), hosts.front());
    EXPECT_EQ(p.back(), hosts.back());
    EXPECT_FALSE(path_links(t, p).empty());
  }
}

}  // namespace
}  // namespace hermes::net
