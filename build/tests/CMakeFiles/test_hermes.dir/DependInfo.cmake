
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hermes/acl_hermes_test.cpp" "tests/CMakeFiles/test_hermes.dir/hermes/acl_hermes_test.cpp.o" "gcc" "tests/CMakeFiles/test_hermes.dir/hermes/acl_hermes_test.cpp.o.d"
  "/root/repo/tests/hermes/agent_edge_cases_test.cpp" "tests/CMakeFiles/test_hermes.dir/hermes/agent_edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/test_hermes.dir/hermes/agent_edge_cases_test.cpp.o.d"
  "/root/repo/tests/hermes/gate_keeper_test.cpp" "tests/CMakeFiles/test_hermes.dir/hermes/gate_keeper_test.cpp.o" "gcc" "tests/CMakeFiles/test_hermes.dir/hermes/gate_keeper_test.cpp.o.d"
  "/root/repo/tests/hermes/hermes_agent_test.cpp" "tests/CMakeFiles/test_hermes.dir/hermes/hermes_agent_test.cpp.o" "gcc" "tests/CMakeFiles/test_hermes.dir/hermes/hermes_agent_test.cpp.o.d"
  "/root/repo/tests/hermes/incremental_update_test.cpp" "tests/CMakeFiles/test_hermes.dir/hermes/incremental_update_test.cpp.o" "gcc" "tests/CMakeFiles/test_hermes.dir/hermes/incremental_update_test.cpp.o.d"
  "/root/repo/tests/hermes/overlap_index_test.cpp" "tests/CMakeFiles/test_hermes.dir/hermes/overlap_index_test.cpp.o" "gcc" "tests/CMakeFiles/test_hermes.dir/hermes/overlap_index_test.cpp.o.d"
  "/root/repo/tests/hermes/partition_test.cpp" "tests/CMakeFiles/test_hermes.dir/hermes/partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_hermes.dir/hermes/partition_test.cpp.o.d"
  "/root/repo/tests/hermes/pipeline_test.cpp" "tests/CMakeFiles/test_hermes.dir/hermes/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_hermes.dir/hermes/pipeline_test.cpp.o.d"
  "/root/repo/tests/hermes/predictor_test.cpp" "tests/CMakeFiles/test_hermes.dir/hermes/predictor_test.cpp.o" "gcc" "tests/CMakeFiles/test_hermes.dir/hermes/predictor_test.cpp.o.d"
  "/root/repo/tests/hermes/qos_api_test.cpp" "tests/CMakeFiles/test_hermes.dir/hermes/qos_api_test.cpp.o" "gcc" "tests/CMakeFiles/test_hermes.dir/hermes/qos_api_test.cpp.o.d"
  "/root/repo/tests/hermes/rule_store_test.cpp" "tests/CMakeFiles/test_hermes.dir/hermes/rule_store_test.cpp.o" "gcc" "tests/CMakeFiles/test_hermes.dir/hermes/rule_store_test.cpp.o.d"
  "/root/repo/tests/hermes/ternary_partition_test.cpp" "tests/CMakeFiles/test_hermes.dir/hermes/ternary_partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_hermes.dir/hermes/ternary_partition_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hermes/CMakeFiles/hermes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/hermes_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hermes_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
