// Simulated time. All simulation-facing latencies in this codebase are
// expressed as integer nanoseconds; no simulation path reads a wall clock.
#pragma once

#include <cstdint>

namespace hermes {

/// A point in simulated time, in nanoseconds since simulation start.
using Time = std::int64_t;
/// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}
constexpr Duration from_millis(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}
constexpr Duration from_micros(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace hermes
