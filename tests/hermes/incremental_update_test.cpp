#include "hermes/incremental_update.h"

#include <gtest/gtest.h>

#include "tcam/switch_model.h"

namespace hermes::core {
namespace {

using net::Prefix;
using net::Rule;

Rule make_rule(net::RuleId id, int priority, std::string_view prefix,
               int port) {
  return Rule{id, priority, *Prefix::parse(prefix), net::forward_to(port)};
}

tcam::Asic fresh_asic() { return tcam::Asic(tcam::pica8_p3290(), {64}); }

TEST(IncrementalReplace, MergesSiblingsAtomically) {
  // Two sibling /25s (port 3) consolidated into one /24.
  tcam::Asic asic = fresh_asic();
  asic.apply(0, {net::FlowModType::kInsert,
                 make_rule(1, 5, "10.0.0.0/25", 3)});
  asic.apply(0, {net::FlowModType::kInsert,
                 make_rule(2, 5, "10.0.0.128/25", 3)});
  Rule merged = make_rule(100, 5, "10.0.0.0/24", 3);
  net::RuleId replaced[] = {1, 2};
  auto result = incremental_replace(asic, 0, 0, merged, replaced);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.atomic);
  EXPECT_EQ(result.bumped_priority, 6);  // one above the replaced rules
  EXPECT_EQ(asic.slice(0).occupancy(), 1);
  auto hit = asic.lookup(*net::Ipv4Address::parse("10.0.0.200"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action.port, 3);
}

TEST(IncrementalReplace, NoGapDuringAtomicPath) {
  // Probe the intermediate state by replaying the algorithm manually:
  // after the insert (step iii, first half) BOTH old and new rules are
  // present — never zero coverage.
  tcam::Asic asic = fresh_asic();
  asic.apply(0, {net::FlowModType::kInsert,
                 make_rule(1, 5, "10.0.0.0/25", 3)});
  Rule merged = make_rule(100, 5, "10.0.0.0/24", 3);
  merged.priority = 6;  // what the bump would pick
  asic.apply(0, {net::FlowModType::kInsert, merged});
  // Intermediate: both resident, lookup still answers.
  auto hit = asic.lookup(*net::Ipv4Address::parse("10.0.0.5"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action.port, 3);
  EXPECT_EQ(hit->id, 100u);  // the bumped rule wins, as designed
}

TEST(IncrementalReplace, RefusesUnsafeBumpWithoutFallback) {
  // An unrelated overlapping rule sits exactly at the bump target
  // priority: bumping would reorder against it.
  tcam::Asic asic = fresh_asic();
  asic.apply(0, {net::FlowModType::kInsert,
                 make_rule(1, 5, "10.0.0.0/25", 3)});
  asic.apply(0, {net::FlowModType::kInsert,
                 make_rule(2, 6, "10.0.0.0/8", 9)});  // unrelated, prio 6
  Rule merged = make_rule(100, 5, "10.0.0.0/24", 3);
  net::RuleId replaced[] = {1};
  auto result = incremental_replace(asic, 0, 0, merged, replaced,
                                    /*allow_fallback=*/false);
  EXPECT_FALSE(result.ok);
  // Old state untouched.
  EXPECT_TRUE(asic.slice(0).contains(1));
  EXPECT_FALSE(asic.slice(0).contains(100));
}

TEST(IncrementalReplace, UnsafeBumpFallsBackNonAtomically) {
  tcam::Asic asic = fresh_asic();
  asic.apply(0, {net::FlowModType::kInsert,
                 make_rule(1, 5, "10.0.0.0/25", 3)});
  asic.apply(0, {net::FlowModType::kInsert,
                 make_rule(2, 6, "10.0.0.0/8", 9)});
  Rule merged = make_rule(100, 5, "10.0.0.0/24", 3);
  net::RuleId replaced[] = {1};
  auto result = incremental_replace(asic, 0, 0, merged, replaced);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.atomic);
  EXPECT_EQ(result.bumped_priority, 5);  // original priority kept
  // Final semantics correct: /8 (prio 6) still outranks the merged /24.
  auto hit = asic.lookup(*net::Ipv4Address::parse("10.0.0.5"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action.port, 9);
}

TEST(IncrementalReplace, EmptyReplacedSetIsPlainInsert) {
  tcam::Asic asic = fresh_asic();
  Rule rule = make_rule(100, 5, "10.0.0.0/24", 3);
  auto result = incremental_replace(asic, 0, 0, rule, {});
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.atomic);
  EXPECT_EQ(result.bumped_priority, 5);
  EXPECT_EQ(asic.slice(0).occupancy(), 1);
}

TEST(IncrementalReplace, MissingReplacedIdsIgnored) {
  tcam::Asic asic = fresh_asic();
  asic.apply(0, {net::FlowModType::kInsert,
                 make_rule(1, 5, "10.0.0.0/25", 3)});
  Rule merged = make_rule(100, 5, "10.0.0.0/24", 3);
  net::RuleId replaced[] = {1, 999};  // 999 never existed
  auto result = incremental_replace(asic, 0, 0, merged, replaced);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.atomic);
  EXPECT_EQ(asic.slice(0).occupancy(), 1);
}

TEST(IncrementalReplace, ChargesControlChannelTime) {
  tcam::Asic asic = fresh_asic();
  asic.apply(0, {net::FlowModType::kInsert,
                 make_rule(1, 5, "10.0.0.0/25", 3)});
  Rule merged = make_rule(100, 5, "10.0.0.0/24", 3);
  net::RuleId replaced[] = {1};
  auto result = incremental_replace(asic, 0, from_millis(3), merged,
                                    replaced);
  EXPECT_GT(result.completion, from_millis(3));
  EXPECT_EQ(asic.busy_until(0), result.completion);
}

}  // namespace
}  // namespace hermes::core
