// Hermes over a multi-field ACL table (ternary matches).
//
// The primary HermesAgent specializes Algorithm 1 to LPM prefixes, which
// is what the paper's FIB-centric evaluation exercises. ACL slices match
// several ternary fields; there the partial overlaps of Figure 5 (c)
// appear and cutting fragments non-minimally. AclHermes is the same
// shadow/main design instantiated over net::TernaryMatch with
// ternary_partition as the correctness engine:
//
//   * inserts land in a bounded shadow table (bounded shifting),
//   * pieces are cut against higher-priority MAIN rules,
//   * a threshold/periodic Rule Manager migrates shadow -> main with a
//     batched write,
//   * deletes un-partition dependents (Figure 6), and
//   * lookups are shadow-first (slice precedence), falling through to
//     main — jointly equivalent to one monolithic ACL table.
//
// Timing reuses tcam::SwitchModel exactly as the prefix agent does.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "hermes/ternary_partition.h"
#include "net/time.h"
#include "tcam/switch_model.h"

namespace hermes::core {

struct AclConfig {
  Duration guarantee = from_millis(5);
  int shadow_capacity = 0;  ///< 0 = derive from the guarantee
  /// Migrate when shadow occupancy crosses this fraction of capacity.
  double watermark = 0.5;
  bool merge_partitions = true;
  /// Fragmentation cap (the Section 4.2 footnote generalized): a rule
  /// whose cut would exceed this many pieces is installed whole in the
  /// main table instead (after draining the shadow so nothing masks it).
  int max_pieces_per_rule = 32;
};

struct AclStats {
  std::uint64_t inserts = 0;
  std::uint64_t main_direct = 0;  ///< fragmentation-cap fallbacks
  std::uint64_t deletes = 0;
  std::uint64_t redundant = 0;
  std::uint64_t pieces = 0;
  std::uint64_t migrations = 0;
  std::uint64_t unpartitions = 0;
  std::uint64_t violations = 0;
};

class AclHermes {
 public:
  AclHermes(const tcam::SwitchModel& model, int tcam_capacity,
            AclConfig config = {});

  /// Inserts a logical ACL rule; returns completion time (>= now).
  Time insert(Time now, const TernaryRule& rule);

  /// Deletes a logical rule, un-partitioning dependents (Figure 6).
  Time erase(Time now, net::RuleId id);

  /// Periodic Rule Manager check; migrates when the watermark trips.
  void tick(Time now);
  /// Forces a migration.
  Time migrate_now(Time now);

  /// Shadow-first lookup over both tables (highest priority within each).
  std::optional<TernaryRule> lookup(std::uint64_t key) const;

  int shadow_occupancy() const { return static_cast<int>(shadow_.size()); }
  int main_occupancy() const { return static_cast<int>(main_.size()); }
  int shadow_capacity() const { return shadow_capacity_; }
  const AclStats& stats() const { return stats_; }
  const std::vector<Duration>& rit_samples() const { return rit_samples_; }

 private:
  struct Logical {
    TernaryRule original;
    bool in_shadow = true;
    std::vector<net::RuleId> piece_ids;  // ids within the physical tables
    std::vector<net::RuleId> cut_against;
  };

  /// Per-op latency of inserting into a table of `occupancy` entries when
  /// `shifts` entries sit below the insertion point.
  Duration insert_latency(int shifts) const {
    return model_->insert_latency(shifts);
  }
  /// Entries of strictly lower priority in `table` (= shift count under
  /// the compact sorted model).
  static int shifts_below(const std::vector<TernaryRule>& table,
                          int priority);
  void unpartition_dependents(Time now, net::RuleId blocker);
  /// Translates physical piece ids into their owning logical ids (dedup).
  std::vector<net::RuleId> owners_of(
      const std::vector<net::RuleId>& piece_ids) const;
  void install_pieces(Time now, Logical& logical, Time* completion);
  net::RuleId next_piece_id() { return piece_id_counter_++; }

  const tcam::SwitchModel* model_;
  AclConfig config_;
  int shadow_capacity_;
  int main_capacity_;
  std::vector<TernaryRule> shadow_;  // physical pieces
  std::vector<TernaryRule> main_;
  std::unordered_map<net::RuleId, Logical> logical_;
  std::unordered_map<net::RuleId, net::RuleId> piece_owner_;
  net::RuleId piece_id_counter_ = net::RuleId{1} << 32;
  Time shadow_channel_ = 0;
  Time main_channel_ = 0;
  AclStats stats_;
  std::vector<Duration> rit_samples_;
};

}  // namespace hermes::core
