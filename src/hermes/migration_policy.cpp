#include "hermes/migration_policy.h"

namespace hermes::core {

std::string_view action_name(MigrationAction action) {
  switch (action) {
    case MigrationAction::kHold:
      return "hold";
    case MigrationAction::kMigrateSmall:
      return "migrate_small";
    case MigrationAction::kMigrateLarge:
      return "migrate_large";
    case MigrationAction::kExpandPartition:
      return "expand_partition";
  }
  return "unknown";
}

ThresholdMigrationPolicy::ThresholdMigrationPolicy(double simple_threshold,
                                                   double migration_watermark)
    : simple_threshold_(simple_threshold),
      migration_watermark_(migration_watermark) {}

MigrationAction ThresholdMigrationPolicy::decide(const PolicyState& state) {
  // Keep the comparison order and arithmetic EXACTLY as the legacy
  // HermesAgent::migration_due() so replayed traces stay bit-identical
  // (tests/hermes/migration_policy_test.cpp holds the two against each
  // other on every consulted epoch).
  if (state.shadow_occupancy == 0) return MigrationAction::kHold;
  double capacity = static_cast<double>(state.shadow_capacity);
  if (simple_threshold_ >= 0) {
    // Hermes-SIMPLE (Section 8.5): plain occupancy threshold.
    return static_cast<double>(state.shadow_occupancy) >=
                   simple_threshold_ * capacity
               ? MigrationAction::kMigrateLarge
               : MigrationAction::kHold;
  }
  // Predictive trigger (Section 5.1): migrate when the corrected
  // forecast would push the shadow past its operating watermark.
  return static_cast<double>(state.shadow_occupancy) + state.predicted_next >=
                 migration_watermark_ * capacity
             ? MigrationAction::kMigrateLarge
             : MigrationAction::kHold;
}

std::shared_ptr<MigrationPolicy> make_migration_policy(
    const HermesConfig& config) {
  if (config.policy_instance) return config.policy_instance;
  if (config.policy == "Threshold") {
    return std::make_shared<ThresholdMigrationPolicy>(
        config.simple_threshold, config.migration_watermark);
  }
  return nullptr;
}

}  // namespace hermes::core
