#include "hermes/ternary_partition.h"

#include <algorithm>

namespace hermes::core {

std::vector<net::TernaryMatch> ternary_difference(
    const net::TernaryMatch& minuend, const net::TernaryMatch& subtrahend) {
  if (!minuend.overlaps(subtrahend)) return {minuend};
  if (subtrahend.contains(minuend)) return {};  // difference is empty

  // Bits the subtrahend pins but the minuend leaves free. Splitting the
  // minuend on each such bit (taking the half that DISAGREES with the
  // subtrahend, then recursing into the agreeing half) tiles the
  // difference exactly.
  std::vector<net::TernaryMatch> out;
  net::TernaryMatch current = minuend;
  std::uint64_t split_bits = subtrahend.mask() & ~minuend.mask();
  while (split_bits != 0) {
    std::uint64_t bit = split_bits & (~split_bits + 1);  // lowest set bit
    split_bits ^= bit;
    // The half of `current` whose `bit` disagrees with the subtrahend is
    // entirely outside it.
    std::uint64_t disagree = (subtrahend.value() & bit) ^ bit;
    out.emplace_back((current.value() & ~bit) | disagree,
                     current.mask() | bit);
    // Continue cutting inside the agreeing half.
    current = net::TernaryMatch(
        (current.value() & ~bit) | (subtrahend.value() & bit),
        current.mask() | bit);
  }
  // `current` now agrees with the subtrahend on every cared bit, i.e. it
  // is contained in it — excluded from the difference.
  return out;
}

std::vector<net::TernaryMatch> merge_ternary(
    std::vector<net::TernaryMatch> cubes) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Drop cubes contained in another.
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      for (std::size_t j = 0; j < cubes.size(); ++j) {
        if (i == j) continue;
        if (cubes[j].contains(cubes[i])) {
          cubes.erase(cubes.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
          --i;
          break;
        }
      }
    }
    // Combine sibling pairs: same mask, values differing in exactly one
    // cared bit.
    for (std::size_t i = 0; i < cubes.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < cubes.size(); ++j) {
        if (cubes[i].mask() != cubes[j].mask()) continue;
        std::uint64_t diff = cubes[i].value() ^ cubes[j].value();
        if (diff == 0 || (diff & (diff - 1)) != 0) continue;  // not 1 bit
        net::TernaryMatch parent(cubes[i].value() & ~diff,
                                 cubes[i].mask() & ~diff);
        cubes.erase(cubes.begin() + static_cast<std::ptrdiff_t>(j));
        cubes[i] = parent;
        changed = true;
        break;
      }
    }
  }
  std::sort(cubes.begin(), cubes.end(),
            [](const net::TernaryMatch& a, const net::TernaryMatch& b) {
              if (a.mask() != b.mask()) return a.mask() < b.mask();
              return a.value() < b.value();
            });
  return cubes;
}

TernaryPartitionResult partition_ternary_rule(
    const TernaryRule& new_rule, const std::vector<TernaryRule>& table,
    bool merge, int max_pieces) {
  TernaryPartitionResult result;
  std::vector<net::TernaryMatch> pieces{new_rule.match};

  // Widest blockers first so wholesale removals short-circuit early.
  std::vector<const TernaryRule*> blockers;
  for (const TernaryRule& r : table) {
    if (r.priority > new_rule.priority && r.match.overlaps(new_rule.match))
      blockers.push_back(&r);
  }
  std::sort(blockers.begin(), blockers.end(),
            [](const TernaryRule* a, const TernaryRule* b) {
              return a->match.specificity() < b->match.specificity();
            });

  for (const TernaryRule* blocker : blockers) {
    std::vector<net::TernaryMatch> next;
    bool cut_something = false;
    for (const net::TernaryMatch& piece : pieces) {
      if (!piece.overlaps(blocker->match)) {
        next.push_back(piece);
        continue;
      }
      cut_something = true;
      auto residual = ternary_difference(piece, blocker->match);
      next.insert(next.end(), residual.begin(), residual.end());
    }
    if (cut_something) result.cut_against.push_back(blocker->id);
    pieces = std::move(next);
    if (pieces.empty()) break;
    if (max_pieces > 0 &&
        static_cast<int>(pieces.size()) > max_pieces) {
      result.exploded = true;
      result.pieces.clear();
      return result;
    }
  }

  if (pieces.empty()) {
    result.redundant = true;
    return result;
  }
  result.pieces = merge ? merge_ternary(std::move(pieces))
                        : std::move(pieces);
  return result;
}

}  // namespace hermes::core
