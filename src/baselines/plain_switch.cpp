#include "baselines/plain_switch.h"

namespace hermes::baselines {

PlainSwitch::PlainSwitch(const tcam::SwitchModel& model, int tcam_capacity)
    : name_(model.name()), asic_(model, {tcam_capacity}) {}

Time PlainSwitch::handle(Time now, const net::FlowMod& mod) {
  Time done = asic_.submit(now, 0, mod);
  if (mod.type == net::FlowModType::kInsert)
    rit_samples_.push_back(done - now);
  return done;
}

Time PlainSwitch::handle_batch(Time now, net::FlowModBatch& batch) {
  obs_batch_size_.record(batch.size());
  Time barrier = now;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const net::FlowMod& mod = batch.mod(i);
    tcam::ApplyResult result;
    Time done = asic_.submit(now, 0, mod, &result);
    if (mod.type == net::FlowModType::kInsert)
      rit_samples_.push_back(done - now);
    batch.complete(i, done, result.ok);
    if (done > barrier) barrier = done;
  }
  return barrier;
}

std::optional<net::Rule> PlainSwitch::lookup(net::Ipv4Address addr) {
  return asic_.lookup(addr);
}

}  // namespace hermes::baselines
