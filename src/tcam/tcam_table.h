// Mechanical model of a single TCAM table (one slice).
//
// A TCAM stores entries in physical slot order and returns the FIRST
// matching slot on lookup. Switch firmware keeps the table compact and
// priority-sorted: inserting a rule "in the middle" shifts every entry
// below the insertion point down one slot — this movement is exactly what
// makes TCAM insertions slow and occupancy-dependent (Section 2.1, and
// the Table 1 measurements, where insert cost keeps tracking occupancy
// regardless of prior deletions). Deletions just invalidate an entry; the
// firmware compacts in the background, which is why deletes are fast and
// occupancy-independent (Section 2.1.1).
//
// Bookkeeping cost model: the priority-ordered `entries_` array is the
// ground truth for shift counts (the hardware mechanics), while an
// id -> priority hash index replaces the old full-array scans in the
// agent-side bookkeeping operations (`contains`/`find`/`erase`/
// `modify_*`). Membership is O(1); locating a slot costs a binary search
// over the sorted array plus a scan of the one equal-priority run —
// O(log n + run) instead of O(n). Storing the priority rather than the
// slot is deliberate: a slot index would be invalidated by every splice
// (each insert/erase shifts the whole suffix), forcing an O(n) reindex
// per mutation, while the priority never moves with the entry. The index
// never changes placement or shift semantics.
//
// This class models the mechanics (placement and shift counts);
// converting shift counts to latency is the job of tcam::SwitchModel.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "net/rule.h"
#include "obs/metrics.h"
#include "tcam/lookup_engine.h"

namespace hermes::tcam {

/// Outcome of a table operation. `shifts` is the number of existing
/// entries the hardware had to move to make room (0 for deletes/modifies).
struct OpResult {
  bool ok = false;
  int shifts = 0;
};

/// Cumulative operation statistics, for overhead accounting (Fig 15).
struct TableStats {
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t modifies = 0;
  std::uint64_t failed_inserts = 0;
  std::uint64_t total_shifts = 0;
  std::uint64_t lookups = 0;
};

class TcamTable {
 public:
  explicit TcamTable(int capacity);

  int capacity() const { return capacity_; }

  /// Re-sizes the slice's entry budget (TCAM re-carving; the
  /// expand-partition migration action rides on this). Refuses to shrink
  /// below the current occupancy — resident entries are never dropped.
  bool set_capacity(int capacity) {
    if (capacity < occupancy()) return false;
    capacity_ = capacity;
    return true;
  }
  int occupancy() const { return static_cast<int>(entries_.size()); }
  bool full() const { return occupancy() == capacity_; }
  bool empty() const { return entries_.empty(); }

  /// Inserts `rule`, maintaining the priority-order invariant.
  ///
  /// Placement: after every entry with priority >= rule.priority (so
  /// equal-priority rules keep arrival order and a new lowest-priority
  /// rule appends for free). Every entry below the insertion point shifts
  /// down one slot. Fails iff the table is full or the id already exists.
  OpResult insert(const net::Rule& rule);

  /// Outcome of a batched insert: how many rules landed and the shifts
  /// the hardware would have charged inserting them one at a time.
  struct BatchInsertResult {
    int inserted = 0;
    int failed = 0;
    std::uint64_t total_shifts = 0;
  };

  /// Inserts `rules` in one single-pass placement: the accepted rules are
  /// merged into the entry array with ONE backward memmove-style sweep,
  /// so each resident entry moves at most once instead of once per rule.
  ///
  /// Semantics are bit-identical to calling insert() per rule in batch
  /// order — same final array, same per-rule shift counts, same stats —
  /// only the bookkeeping cost changes. A rule fails exactly when the
  /// sequential call would have (duplicate id, including duplicates
  /// earlier in the batch, or no free slot at its turn).
  ///
  /// With `stop_at_first_failure` the batch mirrors a sequential loop
  /// that breaks on the first failed insert (the Asic batch-write
  /// contract: only the prefix lands): the first failing rule is charged
  /// as a failed insert, later rules are not attempted and their per-op
  /// slot reads {false, 0} without touching stats.
  ///
  /// `per_op`, when non-null, is resized to rules.size() and filled with
  /// the OpResult each sequential insert would have returned.
  BatchInsertResult insert_batch(std::span<const net::Rule> rules,
                                 std::vector<OpResult>* per_op = nullptr,
                                 bool stop_at_first_failure = false);

  /// Removes the rule with `id`. No charged movement (background
  /// compaction), hence `shifts` is always 0. Indexed slot location; the
  /// entry splice still pays for the slots below it.
  OpResult erase(net::RuleId id);

  /// In-place modification of action (indexed lookup). Fails if absent.
  OpResult modify_action(net::RuleId id, const net::Action& action);

  /// In-place modification of the match without priority change
  /// (indexed lookup, Section 2.1.1). Fails if absent.
  OpResult modify_match(net::RuleId id, const net::Prefix& match);

  /// First-match lookup (what the hardware does). Returns the matching
  /// rule closest to the top, which by the invariant is a highest-priority
  /// match. Served by the tuple-space LookupEngine (maintained
  /// incrementally by every mutation — never rebuilt); copies the rule.
  /// Counts toward stats and the tcam.lookup.* metrics.
  std::optional<net::Rule> lookup(net::Ipv4Address addr);
  /// Zero-copy first-match lookup: same semantics and accounting as
  /// lookup(), without the per-packet Rule copy. The pointer is
  /// invalidated by any table mutation; use it immediately.
  const net::Rule* lookup_ptr(net::Ipv4Address addr);
  /// Linear first-match scan without statistics side effects — the
  /// frozen reference semantics, kept as the differential-test oracle
  /// for the engine (tests/tcam/lookup_engine_test.cpp).
  std::optional<net::Rule> peek(net::Ipv4Address addr) const;

  /// O(1) id membership test via the id index.
  bool contains(net::RuleId id) const;
  /// Indexed id lookup (O(log n + equal-priority run)); copies the rule.
  std::optional<net::Rule> find(net::RuleId id) const;
  /// Zero-copy indexed id lookup. The pointer is invalidated by any table
  /// mutation; use it immediately.
  const net::Rule* find_ptr(net::RuleId id) const;

  /// Highest resident priority (first slot); 0 when empty.
  int max_priority() const {
    return entries_.empty() ? 0 : entries_.front().priority;
  }
  /// Lowest resident priority (last slot); 0 when empty.
  int min_priority() const {
    return entries_.empty() ? 0 : entries_.back().priority;
  }

  /// All rules, top-to-bottom physical order (copies; prefer rules_view).
  std::vector<net::Rule> rules() const;

  /// Zero-copy view of the table, top-to-bottom physical order. The
  /// reference is invalidated by any table mutation.
  const std::vector<net::Rule>& rules_view() const { return entries_; }

  /// Removes every entry (bulk slice reset, no charged movement).
  void clear();

  const TableStats& stats() const { return stats_; }

  /// Validates the physical-order invariant AND id-index <-> array
  /// agreement AND lookup-engine <-> array agreement; used by tests.
  bool check_invariant() const;

  /// The classification engine backing lookup()/lookup_ptr() (exposed
  /// read-only for tests and benches).
  const LookupEngine& engine() const { return engine_; }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  /// Slot of `id` via the index: binary-search its priority, then scan
  /// the equal-priority run. Returns kNoSlot when absent.
  std::size_t locate(net::RuleId id) const;

  int capacity_;
  std::vector<net::Rule> entries_;  // compact, non-increasing priority
  std::unordered_map<net::RuleId, int> priority_of_;  // id -> priority
  LookupEngine engine_;     // classification index over entries_
  std::uint64_t seq_ = 0;   // arrival stamps for the engine's tie-break
  TableStats stats_;

  // Pipeline-wide aggregate counters (obs layer). Captured from the
  // process-attached registry at construction; detached no-op handles —
  // one predicted branch per op — when none is attached. The per-table
  // TableStats above stays the exact per-instance view.
  obs::Counter obs_inserts_ = obs::attached_counter("tcam.inserts");
  obs::Counter obs_deletes_ = obs::attached_counter("tcam.deletes");
  obs::Counter obs_modifies_ = obs::attached_counter("tcam.modifies");
  obs::Counter obs_failed_inserts_ =
      obs::attached_counter("tcam.failed_inserts");
  obs::Counter obs_shifts_ = obs::attached_counter("tcam.shifts");
  obs::Counter obs_lookups_ = obs::attached_counter("tcam.lookups");
  obs::Counter obs_lookup_hits_ = obs::attached_counter("tcam.lookup.hits");
  obs::Counter obs_lookup_misses_ =
      obs::attached_counter("tcam.lookup.misses");
  obs::Histogram obs_lookup_probes_ =
      obs::attached_histogram("tcam.lookup.buckets_probed");
  obs::Histogram obs_batch_size_ =
      obs::attached_histogram("tcam.batch_insert_size");
};

}  // namespace hermes::tcam
