#include "net/rule.h"

namespace hermes::net {

std::string to_string(const Action& action) {
  switch (action.type) {
    case ActionType::kForward:
      return "fwd(" + std::to_string(action.port) + ")";
    case ActionType::kDrop:
      return "drop";
    case ActionType::kToController:
      return "to-controller";
    case ActionType::kGotoNextTable:
      return "goto-next-table";
  }
  return "?";
}

std::string to_string(const Rule& rule) {
  return "#" + std::to_string(rule.id) + " prio=" +
         std::to_string(rule.priority) + " " + rule.match.to_string() +
         " -> " + to_string(rule.action);
}

std::string to_string(const FlowMod& mod) {
  const char* verb = mod.type == FlowModType::kInsert   ? "insert"
                     : mod.type == FlowModType::kDelete ? "delete"
                                                        : "modify";
  return std::string(verb) + " " + to_string(mod.rule);
}

}  // namespace hermes::net
