#include "workloads/facebook.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>

namespace hermes::workloads {

std::vector<Job> facebook_jobs(const FacebookConfig& config,
                               const std::vector<net::NodeId>& hosts) {
  assert(hosts.size() >= 2);
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Job inter-arrivals: Poisson over the window.
  double rate = static_cast<double>(config.job_count) / config.duration_s;
  std::exponential_distribution<double> gap(rate);

  // Width (flows per job): discrete Pareto, alpha ~ 1.5, scaled to the
  // requested mean. Heavy tail => a few very wide shuffles.
  const double alpha_width = 1.5;
  auto sample_width = [&]() {
    double u = std::max(unit(rng), 1e-9);
    double pareto = std::pow(u, -1.0 / alpha_width);  // >= 1
    int width = static_cast<int>(pareto * config.mean_width / 3.0);
    return std::clamp(width, 1, config.max_width);
  };

  // Per-flow bytes: lognormal body + Pareto tail. Most flows are a few
  // MB; the tail reaches multi-GB, pushing their jobs past the 1 GB
  // short/long boundary.
  std::lognormal_distribution<double> body(
      std::log(config.mean_flow_mb * 1e6) - 0.5, 1.0);
  auto sample_bytes = [&]() {
    double bytes = body(rng);
    if (unit(rng) < 0.05) {
      double u = std::max(unit(rng), 1e-9);
      bytes += 2e8 * std::pow(u, -1.0 / 1.3);  // elephant component
    }
    return std::min(bytes, 5e10);
  };

  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(config.job_count));
  double t = 0;
  for (int j = 0; j < config.job_count; ++j) {
    t += gap(rng);
    Job job;
    job.id = j;
    job.arrival = from_seconds(t);
    int width = sample_width();
    job.flows.reserve(static_cast<std::size_t>(width));
    for (int f = 0; f < width; ++f) {
      FlowSpec flow;
      flow.src = hosts[rng() % hosts.size()];
      do {
        flow.dst = hosts[rng() % hosts.size()];
      } while (flow.dst == flow.src);
      flow.bytes = sample_bytes();
      job.flows.push_back(flow);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace hermes::workloads
