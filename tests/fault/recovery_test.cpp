// Recovery-path tests: HermesAgent retry/backoff on failed shadow
// writes, fall-through (or reject) after exhaustion, Rule Manager
// migration requeue, post-reset reconciliation, and the baselines'
// inline retries — all under deterministic FaultPlans.
#include <gtest/gtest.h>

#include <string>

#include "baselines/plain_switch.h"
#include "fault/fault_plan.h"
#include "hermes/hermes_agent.h"
#include "tcam/switch_model.h"

namespace hermes::core {
namespace {

using net::Prefix;
using net::Rule;

constexpr int kShadowSlice = 0;
constexpr int kMainSlice = 1;

Rule make_rule(net::RuleId id, int priority, std::string_view prefix,
               int port) {
  return Rule{id, priority, *Prefix::parse(prefix), net::forward_to(port)};
}

HermesConfig test_config() {
  HermesConfig config;
  config.guarantee = from_millis(5);
  config.token_rate = 1e9;
  config.token_burst = 1e9;
  config.lowest_priority_optimization = false;
  return config;
}

int port_at(HermesAgent& agent, std::string_view addr) {
  auto hit = agent.lookup(*net::Ipv4Address::parse(addr));
  return hit ? hit->action.port : -1;
}

fault::FaultPlanConfig slice_probs(double shadow_prob, double main_prob) {
  fault::FaultPlanConfig fc;
  fc.seed = 0x5AFE;
  fc.slice_overrides.push_back(
      {kShadowSlice, fault::SliceFaults{shadow_prob, 0, 0}});
  fc.slice_overrides.push_back(
      {kMainSlice, fault::SliceFaults{main_prob, 0, 0}});
  return fc;
}

TEST(AgentRecovery, RetriesRecoverFlakyShadowWrites) {
  fault::FaultPlan plan(slice_probs(0.5, 0.0));
  HermesAgent agent(tcam::pica8_p3290(), 2000, test_config());
  agent.asic().set_fault_plan(&plan);

  const int n = 30;
  for (int i = 0; i < n; ++i) {
    agent.insert(i * from_millis(1),
                 make_rule(1 + i, 10, std::to_string(10 + i) + ".0.0.0/8",
                           i % 8));
  }
  // Every rule is installed: flaky writes were retried into the shadow,
  // and any retry-exhausted insert fell through to the (healthy) main.
  EXPECT_EQ(agent.stats().failed_ops, 0u);
  EXPECT_GT(agent.stats().retries, 0u);
  EXPECT_GT(plan.write_failures(), 0u);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(port_at(agent, std::to_string(10 + i) + ".0.0.1"), i % 8)
        << "rule " << 1 + i;
  }
}

TEST(AgentRecovery, ExhaustionFallsThroughToMain) {
  fault::FaultPlan plan(slice_probs(1.0, 0.0));  // shadow never accepts
  HermesConfig config = test_config();
  HermesAgent agent(tcam::pica8_p3290(), 2000, config);
  agent.asic().set_fault_plan(&plan);

  const std::uint64_t n = 5;
  for (std::uint64_t i = 0; i < n; ++i) {
    agent.insert(static_cast<Time>(i) * from_millis(1),
                 make_rule(1 + i, 10, std::to_string(10 + i) + ".0.0.0/8", 3));
  }
  // Each insert burned the full retry budget against the shadow, missed
  // its guarantee, and landed in main instead.
  EXPECT_EQ(agent.stats().retries,
            n * static_cast<std::uint64_t>(config.insert_retry_limit));
  EXPECT_EQ(agent.stats().violations, n);
  EXPECT_EQ(agent.stats().failed_ops, 0u);
  EXPECT_EQ(agent.shadow_occupancy(), 0);
  EXPECT_EQ(agent.main_occupancy(), static_cast<int>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_NE(agent.store().find(1 + i), nullptr);
    EXPECT_EQ(agent.store().find(1 + i)->placement, Placement::kMain);
  }
  EXPECT_EQ(port_at(agent, "10.1.2.3"), 3);
}

TEST(AgentRecovery, ExhaustionRejectsUnderRejectPolicy) {
  fault::FaultPlan plan(slice_probs(1.0, 1.0));
  HermesConfig config = test_config();
  config.reject_on_retry_exhaustion = true;
  HermesAgent agent(tcam::pica8_p3290(), 2000, config);
  agent.asic().set_fault_plan(&plan);

  agent.insert(0, make_rule(1, 10, "10.0.0.0/8", 1));

  EXPECT_EQ(agent.stats().failed_ops, 1u);
  EXPECT_EQ(agent.store().find(1), nullptr);
  EXPECT_EQ(agent.shadow_occupancy(), 0);
  EXPECT_EQ(agent.main_occupancy(), 0);
  EXPECT_EQ(port_at(agent, "10.1.2.3"), -1);
}

TEST(AgentRecovery, MigrationRequeuesAndLaterSucceeds) {
  fault::FaultPlan plan(slice_probs(0.0, 1.0));  // main rejects everything
  HermesAgent agent(tcam::pica8_p3290(), 2000, test_config());
  agent.asic().set_fault_plan(&plan);

  agent.insert(0, make_rule(1, 20, "10.0.0.0/8", 1));
  agent.insert(0, make_rule(2, 10, "11.0.0.0/8", 2));
  ASSERT_EQ(agent.shadow_occupancy(), 2);

  Time t = from_millis(1);
  agent.migrate_now(t);

  // The migration batch failed against main; instead of only rolling
  // back, the run was re-queued with backoff and the rules stayed
  // shadow-resident (still serving traffic).
  EXPECT_EQ(agent.stats().rules_migrated, 0u);
  EXPECT_GT(agent.stats().migration_piece_failures, 0u);
  EXPECT_EQ(agent.stats().migration_requeues, 1u);
  EXPECT_EQ(agent.store().find(1)->placement, Placement::kShadow);
  EXPECT_EQ(port_at(agent, "10.1.2.3"), 1);

  // The switch heals (detach the plan); the re-queued run fires on the
  // next tick past its backoff deadline and drains the shadow.
  agent.asic().set_fault_plan(nullptr);
  agent.tick(t + from_millis(100));
  EXPECT_GE(agent.stats().rules_migrated, 2u);
  EXPECT_EQ(agent.store().find(1)->placement, Placement::kMain);
  EXPECT_EQ(agent.store().find(2)->placement, Placement::kMain);
  EXPECT_EQ(agent.shadow_occupancy(), 0);
  EXPECT_EQ(port_at(agent, "10.1.2.3"), 1);
  EXPECT_EQ(port_at(agent, "11.1.2.3"), 2);
}

TEST(AgentRecovery, ReconcileAfterResetRestoresBothSlices) {
  fault::FaultPlanConfig fc;
  fc.seed = 3;
  fc.resets = {from_millis(50)};
  fault::FaultPlan plan(fc);
  HermesAgent agent(tcam::pica8_p3290(), 2000, test_config());
  agent.asic().set_fault_plan(&plan);

  // A main-resident blocker, a shadow rule it partitions (two pieces),
  // and a disjoint shadow rule.
  agent.insert(0, make_rule(1, 50, "10.64.0.0/10", 5));
  agent.migrate_now(from_millis(1));
  ASSERT_EQ(agent.store().find(1)->placement, Placement::kMain);
  agent.insert(from_millis(2), make_rule(2, 10, "10.0.0.0/8", 1));
  agent.insert(from_millis(3), make_rule(3, 10, "11.0.0.0/8", 2));
  ASSERT_EQ(agent.store().find(2)->physical_ids.size(), 2u);

  // The reset wipes the hardware at the next channel activity; the
  // agent notices the epoch change on its next tick and reinstalls
  // everything from the RuleStore via the batch path.
  agent.tick(from_millis(60));

  EXPECT_EQ(plan.resets_fired(), 1u);
  EXPECT_EQ(agent.stats().reconcile_runs, 1u);
  EXPECT_EQ(agent.stats().reconcile_rules_reinstalled, 3u);
  EXPECT_GE(agent.stats().reconcile_pieces_reinstalled, 4u);
  EXPECT_EQ(agent.stats().reconcile_rules_lost, 0u);
  // Placements survive and every rule serves traffic again.
  EXPECT_EQ(agent.store().find(1)->placement, Placement::kMain);
  EXPECT_EQ(agent.store().find(2)->placement, Placement::kShadow);
  EXPECT_EQ(agent.store().find(3)->placement, Placement::kShadow);
  EXPECT_EQ(port_at(agent, "10.64.0.1"), 5);
  EXPECT_EQ(port_at(agent, "10.1.2.3"), 1);
  EXPECT_EQ(port_at(agent, "10.200.0.1"), 1);
  EXPECT_EQ(port_at(agent, "11.1.2.3"), 2);

  // Reconciliation leaves live state: later ops behave normally.
  agent.insert(from_millis(70), make_rule(4, 10, "12.0.0.0/8", 4));
  EXPECT_EQ(port_at(agent, "12.1.2.3"), 4);
}

TEST(PlainRecovery, InlineRetriesLandFlakyInserts) {
  fault::FaultPlanConfig fc;
  fc.seed = 0xB0B;
  fc.default_slice.write_failure_prob = 0.3;
  fault::FaultPlan plan(fc);
  baselines::PlainSwitch sw(tcam::pica8_p3290(), 512);
  sw.set_fault_plan(&plan);

  const int n = 30;
  for (int i = 0; i < n; ++i) {
    sw.handle(i * from_millis(1),
              {net::FlowModType::kInsert,
               make_rule(1 + i, 10, std::to_string(10 + i) + ".0.0.0/8", 1)});
  }
  EXPECT_GT(plan.write_failures(), 0u);
  // Inline retries (no backoff) land all but pathologically unlucky
  // rules; at prob 0.3 and 3 retries the fixed seed loses none.
  EXPECT_GE(sw.occupancy(), n - 2);
}

TEST(PlainRecovery, PermanentFailureGivesUpAfterRetryBudget) {
  fault::FaultPlanConfig fc;
  fc.default_slice.write_failure_prob = 1.0;
  fault::FaultPlan plan(fc);
  baselines::PlainSwitch sw(tcam::pica8_p3290(), 512);
  sw.set_fault_plan(&plan);

  sw.handle(0, {net::FlowModType::kInsert,
                make_rule(1, 10, "10.0.0.0/8", 1)});
  EXPECT_EQ(sw.occupancy(), 0);
  // Original attempt + the bounded retry budget, nothing more.
  EXPECT_EQ(plan.write_failures(), 4u);
}

}  // namespace
}  // namespace hermes::core
