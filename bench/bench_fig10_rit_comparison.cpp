// Figure 10: CDF of Rule Installation Time — Hermes vs the state of the
// art (Tango, ESPRES) on the Facebook and Geant workloads.
//
// Paper shape to reproduce: all three beat a plain switch; Hermes beats
// Tango and ESPRES by >50% at the median; Tango ~= ESPRES at the median
// but wins at the tail (rule rewriting helps where reordering alone
// cannot); Tango's advantage is larger on Facebook (aggregatable
// data-center prefixes) than on Geant.
#include <cstdio>

#include "bench/sim_common.h"

namespace {

using namespace hermes;

void run_workload(const char* name, const workloads::RuleTrace& trace) {
  std::printf("\n--- %s workload: %zu control-plane actions ---\n", name,
              trace.size());
  double hermes_med = 0, tango_med = 0, espres_med = 0;
  for (const char* kind : {"tango", "espres", "hermes"}) {
    auto backend =
        baselines::make_backend(kind, tcam::pica8_p3290(), 4000);
    bench::prepopulate(*backend, bench::kBaselineRules);
    auto rit_ms = bench::replay(*backend, trace);
    double median = sim::percentile(rit_ms, 0.5);
    if (std::string(kind) == "hermes") hermes_med = median;
    if (std::string(kind) == "tango") tango_med = median;
    if (std::string(kind) == "espres") espres_med = median;
    bench::print_summary_line(kind, rit_ms, "ms");
    bench::print_cdf(std::string(kind) + " RIT CDF (ms)", rit_ms, 10);
  }
  std::printf("\n  Hermes median vs Tango: %.0f%% better; vs ESPRES: "
              "%.0f%% better  [paper: >50%% in the median case]\n",
              100 * (1 - hermes_med / tango_med),
              100 * (1 - hermes_med / espres_med));
  if (auto* rep = bench::report::current()) {
    std::string prefix = std::string(name) + "_improvement_pct_vs_";
    rep->derived(prefix + "tango", 100 * (1 - hermes_med / tango_med));
    rep->derived(prefix + "espres", 100 * (1 - hermes_med / espres_med));
  }
}

}  // namespace

int main() {
  auto& rep = bench::report::open("fig10_rit_comparison", "ms");
  bench::header(
      "Figure 10: RIT comparison, Hermes vs Tango vs ESPRES  [paper: Fig "
      "10]");
  auto facebook = bench::facebook_scenario();
  run_workload("Facebook", bench::busiest_switch_trace(facebook));
  auto geant = bench::geant_scenario();
  run_workload("Geant", bench::busiest_switch_trace(geant));
  rep.write();
  return 0;
}
