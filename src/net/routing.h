// Shortest-path and multipath routing over a Topology.
//
// The traffic-engineering SDNApp (Section 8.1.1) needs, for each
// source/destination pair, a set of candidate paths it can move flows
// between. We provide Dijkstra, ECMP enumeration of equal-cost shortest
// paths, and Yen's k-shortest paths.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/topology.h"

namespace hermes::net {

/// Per-link weight function. hop_count() and propagation_delay() are the
/// two standard choices.
using LinkWeight = std::function<double(const Link&)>;

LinkWeight hop_count();
LinkWeight propagation_delay();

/// Single shortest path src -> dst under `weight`; nullopt if unreachable.
std::optional<Path> shortest_path(const Topology& topo, NodeId src,
                                  NodeId dst, const LinkWeight& weight);

/// Total weight of a path; infinity when the path is broken.
double path_cost(const Topology& topo, const Path& path,
                 const LinkWeight& weight);

/// All equal-cost shortest paths src -> dst, up to `max_paths`
/// (deterministic order: lexicographic by node id).
std::vector<Path> ecmp_paths(const Topology& topo, NodeId src, NodeId dst,
                             const LinkWeight& weight, int max_paths = 16);

/// Yen's algorithm: the k shortest loopless paths src -> dst.
std::vector<Path> k_shortest_paths(const Topology& topo, NodeId src,
                                   NodeId dst, const LinkWeight& weight,
                                   int k);

/// Candidate paths for (src,dst) pairs, computed lazily and memoized.
///
/// Large topologies (a k=16 fat-tree has ~1M host pairs) make eager
/// all-pairs computation wasteful; the TE app only ever asks about pairs
/// that carry flows.
class PathDatabase {
 public:
  /// Serves up to `paths_per_pair` candidate paths per pair. ECMP
  /// shortest paths are preferred; Yen paths fill the remainder when the
  /// topology has few equal-cost options.
  PathDatabase(const Topology& topo, int paths_per_pair, LinkWeight weight);

  /// Candidate paths for src -> dst (empty when unreachable). Memoized.
  const std::vector<Path>& paths(NodeId src, NodeId dst);

  int paths_per_pair() const { return paths_per_pair_; }

 private:
  const Topology& topo_;
  int paths_per_pair_;
  LinkWeight weight_;
  std::unordered_map<std::uint64_t, std::vector<Path>> cache_;
};

}  // namespace hermes::net
