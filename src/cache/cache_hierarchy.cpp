#include "cache/cache_hierarchy.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/trace.h"

namespace hermes::cache {

CacheHierarchy::CacheHierarchy(const tcam::SwitchModel& model,
                               int tcam_capacity, CacheConfig config)
    : config_(config),
      asic_(model, {tcam_capacity}),
      policy_(config.mode == Mode::kCache
                  ? make_policy(config.policy, tcam_capacity)
                  : nullptr),
      next_flush_(config.flush_period) {}

// --- Software tier ------------------------------------------------------------

bool CacheHierarchy::software_erase(net::RuleId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  sw_engine_.erase(it->second.rule);
  entries_.erase(it);
  return true;
}

void CacheHierarchy::software_install(const net::Rule& rule) {
  software_erase(rule.id);
  entries_.emplace(rule.id, Entry{rule, seq_, false});
  sw_engine_.insert(rule, seq_++);
}

int CacheHierarchy::software_resident() const {
  return static_cast<int>(entries_.size()) - cached_count_;
}

// --- Control plane ------------------------------------------------------------

Time CacheHierarchy::handle(Time now, const net::FlowMod& mod) {
  if (config_.mode == Mode::kWriteBack) return write_back_handle(now, mod);
  note_reset_if_any(now);
  switch (mod.type) {
    case net::FlowModType::kInsert:
      return cache_insert(now, mod.rule);
    case net::FlowModType::kDelete:
      return cache_erase(now, mod.rule.id);
    case net::FlowModType::kModify: {
      // Delete + insert with a fresh arrival stamp (Section 4.1's modify
      // decomposition, applied at the hierarchy level).
      Time erased = cache_erase(now, mod.rule.id);
      Time inserted = cache_insert(now, mod.rule);
      return std::max(erased, inserted);
    }
  }
  return now;
}

Time CacheHierarchy::write_back_handle(Time now, const net::FlowMod& mod) {
  switch (mod.type) {
    case net::FlowModType::kInsert: {
      // The control-plane action completes at software speed — that is
      // ShadowSwitch's whole point.
      software_install(mod.rule);
      obs_software_resident_.set(software_resident());
      return now + config_.software_insert;
    }
    case net::FlowModType::kDelete: {
      if (software_erase(mod.rule.id)) {
        obs_software_resident_.set(software_resident());
        return now + config_.software_insert;
      }
      return asic_.submit(now, 0, mod);
    }
    case net::FlowModType::kModify: {
      if (entries_.count(mod.rule.id) > 0) {
        software_install(mod.rule);
        return now + config_.software_insert;
      }
      return asic_.submit(now, 0, mod);
    }
  }
  return now;
}

void CacheHierarchy::tick(Time now) {
  if (config_.mode == Mode::kWriteBack) {
    if (now >= next_flush_ && !entries_.empty()) write_back_flush(now);
    while (next_flush_ <= now) next_flush_ += config_.flush_period;
    return;
  }
  note_reset_if_any(now);
  promote_round(now);
}

Time CacheHierarchy::flush(Time now) {
  if (config_.mode == Mode::kWriteBack) return write_back_flush(now);
  note_reset_if_any(now);
  promote_round(now);
  return now;
}

Time CacheHierarchy::write_back_flush(Time now) {
  if (entries_.empty()) return now;
  std::vector<net::Rule> batch;
  batch.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) batch.push_back(entry.rule);
  // Deterministic flush order: by priority descending then id.
  std::sort(batch.begin(), batch.end(),
            [](const net::Rule& a, const net::Rule& b) {
              if (a.priority != b.priority) return a.priority > b.priority;
              return a.id < b.id;
            });
  tcam::Asic::BatchResult result;
  Time done = asic_.submit_batch_insert(now, 0, batch, &result);
  // Whatever fit leaves software; the rest stays for the next flush.
  //
  // `result.inserted` counts a PREFIX of the batch: the single-pass
  // placement stops at the first rule that does not fit, and fault
  // injection truncates the batch at the first failed write. Dropping
  // the software copy is only safe once the TCAM verifiably holds the
  // rule — if the prefix contract ever broke, blindly erasing the first
  // `inserted` entries would drop a skipped rule from BOTH tiers. So
  // verify per entry; a discrepancy keeps the rule software-resident
  // and is counted (cache.flush_orphans, asserted zero by tests).
  for (int i = 0; i < result.inserted; ++i) {
    const net::Rule& r = batch[static_cast<std::size_t>(i)];
    if (asic_.slice(0).contains(r.id)) {
      software_erase(r.id);
    } else {
      assert(false && "batch insert reported a non-resident rule");
      ++flush_orphans_;
      obs_flush_orphans_.inc();
    }
  }
  obs_software_resident_.set(software_resident());
  return done;
}

// --- kCache control plane -----------------------------------------------------

Time CacheHierarchy::cache_insert(Time now, const net::Rule& rule) {
  if (entries_.count(rule.id) > 0) cache_erase(now, rule.id);
  software_install(rule);
  uncached_index_.insert(rule);
  // A new software-only rule must not be shadowed by a lower-or-equal
  // priority cached rule it overlaps: demote any such rule now.
  demote_conflicting(now, rule);
  obs_software_resident_.set(software_resident());
  return now + config_.software_insert;
}

Time CacheHierarchy::cache_erase(Time now, net::RuleId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return now;
  const Entry entry = it->second;
  Time completion = now + config_.software_insert;
  if (entry.cached) {
    cached_index_.erase(id, entry.rule.match);
    --cached_count_;
    net::FlowMod del{net::FlowModType::kDelete, net::Rule{id, 0, {}, {}}};
    completion = asic_.submit(now, 0, del);
  } else {
    uncached_index_.erase(id, entry.rule.match);
  }
  policy_->on_remove(id);
  in_queue_.erase(id);
  software_erase(id);
  obs_software_resident_.set(software_resident());
  return completion;
}

void CacheHierarchy::note_reset_if_any(Time now) {
  asic_.poll(now);
  if (asic_.reset_epoch() == seen_reset_epoch_) return;
  seen_reset_epoch_ = asic_.reset_epoch();
  // The wipe emptied the TCAM tier; the software tier is inclusive, so
  // no rule is lost — flip every cached rule back to software-only and
  // let popularity re-fill the cache.
  for (auto& [id, entry] : entries_) {
    if (!entry.cached) continue;
    entry.cached = false;
    cached_index_.erase(id, entry.rule.match);
    uncached_index_.insert(entry.rule);
    policy_->on_evict(id);
  }
  cached_count_ = 0;
  obs_software_resident_.set(software_resident());
}

void CacheHierarchy::enqueue_promotion(net::RuleId id) {
  if (in_queue_.count(id)) return;
  if (static_cast<int>(promo_queue_.size()) >= config_.promotion_queue_max)
    return;
  promo_queue_.push_back(id);
  in_queue_.insert(id);
}

void CacheHierarchy::promote_round(Time now) {
  int budget = config_.promotion_batch_max;
  std::unordered_set<net::RuleId> pinned;
  int installed_total = 0;
  while (budget > 0 && !promo_queue_.empty()) {
    const net::RuleId id = promo_queue_.front();
    promo_queue_.pop_front();
    in_queue_.erase(id);
    auto it = entries_.find(id);
    if (it == entries_.end() || it->second.cached) continue;
    const int installed = promote_one(now, id, pinned);
    installed_total += installed;
    budget -= std::max(installed, 1);
  }
  if (installed_total > 0) {
    obs_batch_rules_.record(static_cast<std::uint64_t>(installed_total));
    obs::trace_event(obs::cache_op_event(now, obs::kCachePromote,
                                         installed_total,
                                         static_cast<int>(pins_)));
  }
}

int CacheHierarchy::promote_one(Time now, net::RuleId id,
                                std::unordered_set<net::RuleId>& pinned) {
  // 1. Dependency closure: every software-only rule overlapping a
  //    closure member at >= priority must come along, or a TCAM hit on
  //    the promoted rule could mask it.
  std::vector<net::Rule> closure{entries_.at(id).rule};
  std::unordered_set<net::RuleId> in_closure{id};
  for (std::size_t i = 0; i < closure.size(); ++i) {
    const net::Rule member = closure[i];
    for (const net::Rule& s :
         uncached_index_.overlapping(member.match, member.priority - 1)) {
      if (!in_closure.insert(s.id).second) continue;
      closure.push_back(s);
      if (static_cast<int>(closure.size()) > config_.closure_limit) {
        ++promotion_aborts_;
        obs_promotion_aborts_.inc();
        return 0;
      }
    }
  }
  obs_closure_size_.record(closure.size());

  // 2. Capacity: evict (cascade-demote) until the closure fits. Victims
  //    whose cascade is oversized get pinned; a round with nothing left
  //    to evict aborts the promotion.
  std::unordered_set<net::RuleId> blocked = pinned;
  blocked.insert(in_closure.begin(), in_closure.end());
  const tcam::TcamTable& tier = asic_.slice(0);
  int guard = 4 * config_.closure_limit + 8;
  while (tier.capacity() - tier.occupancy() <
         static_cast<int>(closure.size())) {
    if (--guard < 0) {
      ++promotion_aborts_;
      obs_promotion_aborts_.inc();
      return 0;
    }
    const net::RuleId vid = policy_->victim(blocked);
    if (vid == net::kInvalidRuleId) {
      ++promotion_aborts_;
      obs_promotion_aborts_.inc();
      return 0;
    }
    auto vit = entries_.find(vid);
    if (vit == entries_.end() || !vit->second.cached) {
      // Stale policy state (should not happen); quarantine the id.
      blocked.insert(vid);
      continue;
    }
    std::vector<net::Rule> cascade = demotion_cascade(vit->second.rule);
    if (cascade.empty()) {  // cascade exceeded closure_limit: pin
      pinned.insert(vid);
      blocked.insert(vid);
      ++pins_;
      obs_pins_.inc();
      continue;
    }
    for (const net::Rule& c : cascade) demote(now, c);
    obs::trace_event(obs::cache_op_event(
        now, obs::kCacheDemote, static_cast<int>(cascade.size()), 0));
  }

  // 3. Install, highest priority first, arrival order within a priority
  //    level — the TCAM's place-below-equal-priority insert then
  //    reproduces the software engine's tie-break exactly.
  std::sort(closure.begin(), closure.end(),
            [this](const net::Rule& a, const net::Rule& b) {
              if (a.priority != b.priority) return a.priority > b.priority;
              return entries_.at(a.id).seq < entries_.at(b.id).seq;
            });
  tcam::Asic::BatchResult result;
  asic_.submit_batch_insert(now, 0, closure, &result);
  for (int i = 0; i < result.inserted; ++i) {
    const net::Rule& r = closure[static_cast<std::size_t>(i)];
    Entry& e = entries_.at(r.id);
    e.cached = true;
    ++cached_count_;
    uncached_index_.erase(r.id, r.match);
    cached_index_.insert(r);
    policy_->on_admit(r.id);
    ++promotions_;
    obs_promotions_.inc();
  }
  // A fault-truncated batch can leave closure members software-only. The
  // truncation is a prefix of a priority-sorted batch, so the only
  // possible invariant break is an equal-priority overlap straddling the
  // cut — repair it with the insert-path maintenance.
  for (std::size_t i = static_cast<std::size_t>(result.inserted);
       i < closure.size(); ++i)
    demote_conflicting(now, closure[i]);
  obs_software_resident_.set(software_resident());
  return result.inserted;
}

void CacheHierarchy::demote_conflicting(Time now, const net::Rule& rule) {
  // BFS from the software-only `rule`: any cached rule at <= priority
  // overlapping an affected rule must leave the TCAM (its hit would mask
  // the software rule), and each demotion can expose further conflicts.
  std::vector<net::Rule> frontier{rule};
  std::unordered_set<net::RuleId> seen{rule.id};
  while (!frontier.empty()) {
    const net::Rule u = frontier.back();
    frontier.pop_back();
    for (const net::Rule& c : cached_index_.overlapping(
             u.match, std::numeric_limits<int>::min())) {
      if (c.priority > u.priority) continue;
      if (!seen.insert(c.id).second) continue;
      auto it = entries_.find(c.id);
      if (it == entries_.end() || !it->second.cached) continue;
      demote(now, c);
      frontier.push_back(c);
    }
  }
}

void CacheHierarchy::demote(Time now, const net::Rule& rule) {
  Entry& e = entries_.at(rule.id);
  assert(e.cached);
  e.cached = false;
  --cached_count_;
  cached_index_.erase(rule.id, rule.match);
  uncached_index_.insert(rule);
  net::FlowMod del{net::FlowModType::kDelete,
                   net::Rule{rule.id, 0, {}, {}}};
  asic_.submit(now, 0, del);
  policy_->on_evict(rule.id);
  ++demotions_;
  obs_demotions_.inc();
}

std::vector<net::Rule> CacheHierarchy::demotion_cascade(
    const net::Rule& victim) const {
  std::vector<net::Rule> cascade{victim};
  std::unordered_set<net::RuleId> seen{victim.id};
  for (std::size_t i = 0; i < cascade.size(); ++i) {
    const net::Rule member = cascade[i];
    for (const net::Rule& c : cached_index_.overlapping(
             member.match, std::numeric_limits<int>::min())) {
      if (c.priority > member.priority) continue;
      if (!seen.insert(c.id).second) continue;
      cascade.push_back(c);
      if (static_cast<int>(cascade.size()) > config_.closure_limit)
        return {};
    }
  }
  return cascade;
}

// --- Data plane ---------------------------------------------------------------

CacheHierarchy::LookupResult CacheHierarchy::classify(
    Time now, net::Ipv4Address addr) {
  LookupResult res;
  if (config_.mode == Mode::kWriteBack) {
    const net::Rule* hw = asic_.lookup_ptr(now, addr);
    const net::Rule* sw = sw_engine_.lookup(addr);
    // Hardware wins priority ties (the TCAM answers before the slow
    // path) — the ShadowSwitch seam semantic.
    if (hw && sw) res.rule = hw->priority >= sw->priority ? hw : sw;
    else res.rule = hw != nullptr ? hw : sw;
    res.tcam_hit = res.rule != nullptr && res.rule == hw;
    res.latency = res.tcam_hit || res.rule == nullptr
                      ? 0
                      : config_.software_latency;
    if (!res.tcam_hit && res.rule != nullptr)
      obs_miss_latency_.record(static_cast<std::uint64_t>(res.latency));
    return res;
  }

  note_reset_if_any(now);
  const net::Rule* hw = asic_.lookup_ptr(now, addr);
  if (hw != nullptr) {
    // Invariant: no software-only rule at >= priority overlaps a cached
    // rule, so the TCAM answer is authoritative.
    res.rule = hw;
    res.tcam_hit = true;
    ++hits_;
    obs_hits_.inc();
    policy_->on_hit(hw->id);
  } else {
    const net::Rule* sw = sw_engine_.lookup(addr);
    res.rule = sw;
    res.latency = config_.software_latency;
    ++misses_;
    obs_misses_.inc();
    obs_miss_latency_.record(static_cast<std::uint64_t>(res.latency));
    if (sw != nullptr) {
      policy_->on_miss(sw->id);
      const Entry& e = entries_.at(sw->id);
      if (!e.cached && policy_->should_promote(sw->id))
        enqueue_promotion(sw->id);
    }
  }
  if (config_.verify_lookups) {
    const net::Rule* oracle = sw_engine_.lookup(addr);
    const net::RuleId got = res.rule ? res.rule->id : net::kInvalidRuleId;
    const net::RuleId want = oracle ? oracle->id : net::kInvalidRuleId;
    if (got != want) {
      ++dependency_violations_;
      obs_violations_.inc();
    }
  }
  return res;
}

std::optional<net::Rule> CacheHierarchy::lookup(net::Ipv4Address addr) {
  auto hw = asic_.lookup(addr);
  if (config_.mode == Mode::kCache && hw) return hw;
  const net::Rule* sw = sw_engine_.lookup(addr);
  if (hw && sw) return hw->priority >= sw->priority ? *hw : *sw;
  if (hw) return hw;
  if (sw) return *sw;
  return std::nullopt;
}

const net::Rule* CacheHierarchy::lookup_ptr(Time now,
                                            net::Ipv4Address addr) {
  if (config_.mode == Mode::kCache) return classify(now, addr).rule;
  const net::Rule* hw = asic_.lookup_ptr(now, addr);
  const net::Rule* sw = sw_engine_.lookup(addr);
  if (hw && sw) return hw->priority >= sw->priority ? hw : sw;
  return hw != nullptr ? hw : sw;
}

// --- Invariant oracle ---------------------------------------------------------

bool CacheHierarchy::check_invariant() const {
  if (config_.mode == Mode::kWriteBack) return true;
  int cached_seen = 0;
  for (const auto& [id, entry] : entries_) {
    if (!entry.cached) continue;
    ++cached_seen;
    if (!asic_.slice(0).contains(id)) return false;
    // No software-only rule at >= priority may overlap a cached rule.
    for (const net::Rule& s : uncached_index_.overlapping(
             entry.rule.match, entry.rule.priority - 1)) {
      if (s.id != id) return false;
    }
  }
  if (cached_seen != cached_count_) return false;
  if (cached_count_ != asic_.slice(0).occupancy()) return false;
  if (cached_index_.size() != static_cast<std::size_t>(cached_count_))
    return false;
  if (uncached_index_.size() !=
      entries_.size() - static_cast<std::size_t>(cached_count_))
    return false;
  return sw_engine_.check_invariant();
}

}  // namespace hermes::cache
