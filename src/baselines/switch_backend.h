// A uniform control-plane interface over switch implementations, so the
// simulator and benchmark harnesses can swap Hermes, the related-work
// baselines (Tango, ESPRES) and a plain unmodified switch (Section 8.3).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "net/rule.h"
#include "net/time.h"

namespace hermes::baselines {

class SwitchBackend {
 public:
  virtual ~SwitchBackend() = default;

  /// Applies one control-plane action arriving at `now`; returns its
  /// completion time (>= now).
  virtual Time handle(Time now, const net::FlowMod& mod) = 0;

  /// Periodic background hook (batch flushes, Hermes epochs/migration).
  /// Call with non-decreasing `now`.
  virtual void tick(Time now) = 0;

  /// Data-plane lookup against the currently installed rules.
  virtual std::optional<net::Rule> lookup(net::Ipv4Address addr) = 0;

  virtual std::string_view name() const = 0;

  /// One rule-installation-time sample per controller-visible insert.
  virtual const std::vector<Duration>& rit_samples() const = 0;
  virtual void clear_rit_samples() = 0;
};

}  // namespace hermes::baselines
