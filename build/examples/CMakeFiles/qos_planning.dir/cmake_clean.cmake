file(REMOVE_RECURSE
  "CMakeFiles/qos_planning.dir/qos_planning.cpp.o"
  "CMakeFiles/qos_planning.dir/qos_planning.cpp.o.d"
  "qos_planning"
  "qos_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
