// Empirical switch control-plane latency models (Section 8.1.1).
//
// The paper's simulator "models control plane action latency by
// incorporating existing empirical models of switch TCAM behavior"
// [Kuźniar et al., PAM'15; He et al., SOSR'15]. We reproduce that: each
// SwitchModel converts the mechanical cost of an operation (how many TCAM
// entries were shifted) into latency via a piecewise-linear curve anchored
// at the occupancy/update-rate calibration points of Table 1.
//
// Modeled behaviors (Section 2.1.1 "Takeaways"):
//  * insertion latency grows (roughly linearly) with the number of entries
//    that must move — hence with occupancy for mid/high-priority inserts;
//  * inserting at the bottom of the table (0 shifts) costs only the base
//    write latency — the Section 4.2 optimization exploits this;
//  * deletion is fast and occupancy-independent;
//  * modification without priority change is constant time.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/time.h"

namespace hermes::tcam {

/// A calibration point: inserting into a table already holding `occupancy`
/// rules proceeds at `updates_per_second` (Table 1 format).
struct CalibrationPoint {
  int occupancy = 0;
  double updates_per_second = 0.0;
};

class SwitchModel {
 public:
  /// `points` must be non-empty, sorted ascending by occupancy.
  /// `base_latency` is the cost of a raw TCAM slot write (an insert that
  /// shifts nothing). Latency between calibration points is interpolated
  /// linearly; beyond the last point it is extrapolated with the final
  /// segment's slope.
  SwitchModel(std::string name, std::vector<CalibrationPoint> points,
              Duration base_latency, Duration delete_latency,
              Duration modify_latency,
              Duration slot_write_latency = from_micros(10));

  const std::string& name() const { return name_; }

  /// Latency of an insertion that displaced `shifts` existing entries.
  Duration insert_latency(int shifts) const;

  /// Latency of a deletion (constant; Section 2.1.1).
  Duration delete_latency() const { return delete_latency_; }

  /// Latency of a match/action modification without priority change.
  Duration modify_latency() const { return modify_latency_; }

  Duration base_latency() const { return base_latency_; }

  /// Cost of programming one TCAM slot, without any entry movement. Used
  /// by batched updates.
  Duration slot_write_latency() const { return slot_write_latency_; }

  /// Latency of writing `batch_size` rules as one optimized batch into a
  /// table currently holding `occupancy_before` entries.
  ///
  /// Models the migration-step-2 optimizers the paper cites (Tango,
  /// RuleTris): a dependency-aware batch moves each existing entry at most
  /// once — the cost of a single worst-case insert — and then programs the
  /// new slots. This is what makes draining a full shadow table far
  /// cheaper than rule-by-rule reinsertion (Section 5.2).
  Duration batch_insert_latency(int occupancy_before, int batch_size) const;

  /// Latency of invalidating `batch_size` entries as one batch (emptying
  /// the shadow table, Figure 7 step 4). Deletions move nothing, so the
  /// batch costs one delete round plus a slot invalidation per extra
  /// entry.
  Duration batch_delete_latency(int batch_size) const;

  /// Sustained update rate when every insert shifts ~`occupancy` entries —
  /// the quantity Table 1 reports.
  double max_update_rate(int occupancy) const;

  /// Largest shift count whose insertion completes within `bound` — the
  /// inversion Hermes uses to size shadow tables (Sections 5, 7).
  /// Returns 0 when even a bare write exceeds the bound.
  int max_shifts_within(Duration bound) const;

  const std::vector<CalibrationPoint>& calibration() const { return points_; }

 private:
  std::string name_;
  std::vector<CalibrationPoint> points_;
  Duration base_latency_;
  Duration delete_latency_;
  Duration modify_latency_;
  Duration slot_write_latency_;
};

/// The three commodity switches the paper simulates (Section 8.1.1).
/// Pica8 and Dell use the Table 1 measurements verbatim; the HP 5406zl —
/// whose numbers Table 1 omits — uses a flatter, higher-base profile
/// consistent with the He et al. measurements the paper cites.
const SwitchModel& pica8_p3290();
const SwitchModel& dell_8132f();
const SwitchModel& hp_5406zl();

/// All three, for "experiments are run across all three switch models".
std::vector<const SwitchModel*> all_switch_models();

/// Lookup by name ("pica8", "dell", "hp", case-insensitive prefixes of the
/// full names also accepted); nullptr when unknown.
const SwitchModel* find_switch_model(std::string_view name);

}  // namespace hermes::tcam
