#include "hermes/pipeline.h"

#include <cassert>

namespace hermes::core {

MultiTablePipeline::MultiTablePipeline(const tcam::SwitchModel& model,
                                       std::vector<int> table_capacities,
                                       std::vector<TableConfig> configs)
    : configs_(std::move(configs)) {
  assert(table_capacities.size() == configs_.size() &&
         !table_capacities.empty());
  agents_.reserve(table_capacities.size());
  for (std::size_t i = 0; i < table_capacities.size(); ++i) {
    agents_.push_back(std::make_unique<HermesAgent>(
        model, table_capacities[i], configs_[i].hermes));
  }
}

Time MultiTablePipeline::handle(Time now, int table_idx,
                                const net::FlowMod& mod) {
  assert(table_idx >= 0 && table_idx < table_count());
  return agents_[static_cast<std::size_t>(table_idx)]->handle(now, mod);
}

void MultiTablePipeline::tick(Time now) {
  for (auto& agent : agents_) agent->tick(now);
}

MultiTablePipeline::PipelineResult MultiTablePipeline::process(
    net::Ipv4Address addr) {
  PipelineResult result;
  for (int idx = 0; idx < table_count(); ++idx) {
    result.table = idx;
    const net::Rule* hit = agents_[static_cast<std::size_t>(idx)]->lookup_ptr(addr);
    if (hit) {
      result.rule = hit->id;
      switch (hit->action.type) {
        case net::ActionType::kForward:
          result.kind = PipelineResult::Kind::kForward;
          result.port = hit->action.port;
          return result;
        case net::ActionType::kDrop:
          result.kind = PipelineResult::Kind::kDrop;
          return result;
        case net::ActionType::kToController:
          result.kind = PipelineResult::Kind::kToController;
          return result;
        case net::ActionType::kGotoNextTable:
          continue;  // fall through to the next pipeline table
      }
    }
    // Table miss: the ORIGINAL table's miss behavior applies (the shadow
    // slice's fall-through to its main slice already happened inside
    // HermesAgent::lookup).
    switch (configs_[static_cast<std::size_t>(idx)].miss) {
      case MissBehavior::kGotoNextTable:
        continue;
      case MissBehavior::kToController:
        result.kind = PipelineResult::Kind::kToController;
        result.rule = net::kInvalidRuleId;
        return result;
      case MissBehavior::kDrop:
        result.kind = PipelineResult::Kind::kDrop;
        result.rule = net::kInvalidRuleId;
        return result;
    }
  }
  // Fell off the end of the pipeline: drop (the OpenFlow default).
  result.kind = PipelineResult::Kind::kDrop;
  result.rule = net::kInvalidRuleId;
  return result;
}

}  // namespace hermes::core
