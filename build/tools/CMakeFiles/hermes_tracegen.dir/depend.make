# Empty dependencies file for hermes_tracegen.
# This may be replaced when dependencies are built.
