#include "net/flow_mod_batch.h"

#include <algorithm>

namespace hermes::net {

Time FlowModBatch::barrier(Time floor) const {
  Time latest = floor;
  for (const ModResult& r : results_) {
    if (r.status != ModStatus::kPending)
      latest = std::max(latest, r.completion);
  }
  return latest;
}

std::size_t FlowModBatch::applied_count() const {
  return static_cast<std::size_t>(
      std::count_if(results_.begin(), results_.end(), [](const ModResult& r) {
        return r.status == ModStatus::kApplied;
      }));
}

std::size_t FlowModBatch::failed_count() const {
  return static_cast<std::size_t>(
      std::count_if(results_.begin(), results_.end(), [](const ModResult& r) {
        return r.status == ModStatus::kFailed;
      }));
}

std::string to_string(const FlowModBatch& batch) {
  std::size_t inserts = 0, deletes = 0, modifies = 0;
  for (const FlowMod& m : batch.mods()) {
    switch (m.type) {
      case FlowModType::kInsert: ++inserts; break;
      case FlowModType::kDelete: ++deletes; break;
      case FlowModType::kModify: ++modifies; break;
    }
  }
  std::string out = "FlowModBatch{" + std::to_string(batch.size()) + " mods: ";
  out += std::to_string(inserts) + " ins, ";
  out += std::to_string(deletes) + " del, ";
  out += std::to_string(modifies) + " mod; ";
  out += std::to_string(batch.applied_count()) + " applied, ";
  out += std::to_string(batch.failed_count()) + " failed}";
  return out;
}

}  // namespace hermes::net
