#include "baselines/espres.h"

#include <algorithm>

namespace hermes::baselines {

EspresSwitch::EspresSwitch(const tcam::SwitchModel& model, int tcam_capacity,
                           Duration batch_window)
    : asic_(model, {tcam_capacity}), batch_window_(batch_window) {}

Time EspresSwitch::handle(Time now, const net::FlowMod& mod) {
  // Deletes and modifies are cheap and order-insensitive: pass through.
  if (mod.type != net::FlowModType::kInsert) return asic_.submit(now, 0, mod);
  if (pending_.empty()) window_deadline_ = now + batch_window_;
  pending_.push_back({now, mod});
  // The insert completes when its batch flushes; report the deadline as a
  // lower bound (tick() refines the recorded RIT with the real value).
  return window_deadline_;
}

Time EspresSwitch::handle_batch(Time now, net::FlowModBatch& batch) {
  obs_batch_size_.record(batch.size());
  Time barrier = now;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Time done = handle(now, batch.mod(i));
    batch.complete(i, done);
    if (done > barrier) barrier = done;
  }
  return barrier;
}

void EspresSwitch::tick(Time now) {
  if (!pending_.empty() && now >= window_deadline_) flush(now);
}

Time EspresSwitch::flush(Time now) {
  if (pending_.empty()) return now;
  // Schedule: descending priority => every batched insert appends below
  // the previously flushed ones, eliminating intra-batch shifting, and
  // the whole schedule goes to the hardware as ONE update transaction
  // (existing entries move at most once). Stable sort keeps arrival
  // order within one priority level.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.mod.rule.priority > b.mod.rule.priority;
                   });
  std::vector<net::Rule> batch;
  batch.reserve(pending_.size());
  for (const Pending& p : pending_) batch.push_back(p.mod.rule);
  tcam::Asic::BatchResult result;
  Time last = asic_.submit_batch_insert(now, 0, batch, &result);
  if (asic_.fault_plan() != nullptr) {
    // An injected failure truncated the schedule: immediately re-submit
    // the un-landed suffix (the scheduler has no backoff — it just keeps
    // the window's transaction going).
    std::size_t landed = static_cast<std::size_t>(result.inserted);
    for (int attempt = 1;
         attempt <= kFaultRetryLimit && landed < batch.size(); ++attempt) {
      obs_retries_.inc();
      std::vector<net::Rule> rest(
          batch.begin() + static_cast<std::ptrdiff_t>(landed), batch.end());
      tcam::Asic::BatchResult r2;
      last = asic_.submit_batch_insert(last, 0, rest, &r2);
      landed += static_cast<std::size_t>(r2.inserted);
    }
  }
  for (const Pending& p : pending_)
    rit_samples_.push_back(last - p.arrival);
  pending_.clear();
  return last;
}

std::optional<net::Rule> EspresSwitch::lookup(net::Ipv4Address addr) {
  return asic_.lookup(addr);
}

const net::Rule* EspresSwitch::lookup_ptr(Time now, net::Ipv4Address addr) {
  return asic_.lookup_ptr(now, addr);
}

}  // namespace hermes::baselines
