#include "tcam/tcam_table.h"

#include <algorithm>

namespace hermes::tcam {

namespace {
// Comparator matching the physical order: non-increasing priority.
constexpr auto kByPriorityDesc = [](const net::Rule& r, int priority) {
  return r.priority > priority;
};
constexpr auto kPriorityDescUpper = [](int priority, const net::Rule& r) {
  return priority > r.priority;
};
}  // namespace

TcamTable::TcamTable(int capacity) : capacity_(capacity > 0 ? capacity : 0) {
  entries_.reserve(static_cast<std::size_t>(capacity_));
  priority_of_.reserve(static_cast<std::size_t>(capacity_));
}

std::size_t TcamTable::locate(net::RuleId id) const {
  auto it = priority_of_.find(id);
  if (it == priority_of_.end()) return kNoSlot;
  int priority = it->second;
  auto lo = std::lower_bound(entries_.begin(), entries_.end(), priority,
                             kByPriorityDesc);
  auto hi = std::upper_bound(lo, entries_.end(), priority, kPriorityDescUpper);
  for (auto e = lo; e != hi; ++e) {
    if (e->id == id) return static_cast<std::size_t>(e - entries_.begin());
  }
  return kNoSlot;  // unreachable while the index invariant holds
}

OpResult TcamTable::insert(const net::Rule& rule) {
  if (full() || priority_of_.count(rule.id) > 0) {
    ++stats_.failed_inserts;
    obs_failed_inserts_.inc();
    return {false, 0};
  }
  // Insertion point: after every entry with priority >= rule.priority.
  // (Equal-priority entries keep arrival order; a new lowest-priority
  // rule appends at the bottom with zero shifts.)
  auto pos = std::upper_bound(entries_.begin(), entries_.end(), rule.priority,
                              kPriorityDescUpper);
  int shifts = static_cast<int>(entries_.end() - pos);
  entries_.insert(pos, rule);
  priority_of_.emplace(rule.id, rule.priority);
  ++stats_.inserts;
  stats_.total_shifts += static_cast<std::uint64_t>(shifts);
  obs_inserts_.inc();
  obs_shifts_.inc(static_cast<std::uint64_t>(shifts));
  return {true, shifts};
}

OpResult TcamTable::erase(net::RuleId id) {
  std::size_t slot = locate(id);
  if (slot == kNoSlot) return {false, 0};
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(slot));
  priority_of_.erase(id);
  ++stats_.deletes;
  obs_deletes_.inc();
  return {true, 0};
}

OpResult TcamTable::modify_action(net::RuleId id, const net::Action& action) {
  std::size_t slot = locate(id);
  if (slot == kNoSlot) return {false, 0};
  entries_[slot].action = action;
  ++stats_.modifies;
  obs_modifies_.inc();
  return {true, 0};
}

OpResult TcamTable::modify_match(net::RuleId id, const net::Prefix& match) {
  std::size_t slot = locate(id);
  if (slot == kNoSlot) return {false, 0};
  entries_[slot].match = match;
  ++stats_.modifies;
  obs_modifies_.inc();
  return {true, 0};
}

std::optional<net::Rule> TcamTable::lookup(net::Ipv4Address addr) {
  ++stats_.lookups;
  obs_lookups_.inc();
  return peek(addr);
}

std::optional<net::Rule> TcamTable::peek(net::Ipv4Address addr) const {
  for (const net::Rule& r : entries_) {
    if (r.match.contains(addr)) return r;
  }
  return std::nullopt;
}

bool TcamTable::contains(net::RuleId id) const {
  return priority_of_.count(id) > 0;
}

std::optional<net::Rule> TcamTable::find(net::RuleId id) const {
  const net::Rule* r = find_ptr(id);
  if (!r) return std::nullopt;
  return *r;
}

const net::Rule* TcamTable::find_ptr(net::RuleId id) const {
  std::size_t slot = locate(id);
  return slot == kNoSlot ? nullptr : &entries_[slot];
}

std::vector<net::Rule> TcamTable::rules() const { return entries_; }

void TcamTable::clear() {
  entries_.clear();
  priority_of_.clear();
}

bool TcamTable::check_invariant() const {
  if (static_cast<int>(entries_.size()) > capacity_) return false;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].priority > entries_[i - 1].priority) return false;
  }
  // Index <-> array agreement: exactly one index entry per rule, carrying
  // the priority the rule is filed under (what locate() relies on).
  if (priority_of_.size() != entries_.size()) return false;
  for (const net::Rule& r : entries_) {
    auto it = priority_of_.find(r.id);
    if (it == priority_of_.end() || it->second != r.priority) return false;
  }
  return true;
}

}  // namespace hermes::tcam
