#include "hermes/overlap_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>

namespace hermes::core {
namespace {

using net::Prefix;
using net::Rule;

constexpr int kAll = std::numeric_limits<int>::min();

Rule make_rule(net::RuleId id, int priority, std::string_view prefix) {
  return Rule{id, priority, *Prefix::parse(prefix), net::forward_to(1)};
}

std::vector<net::RuleId> ids_of(const std::vector<Rule>& rules) {
  std::vector<net::RuleId> ids;
  for (const Rule& r : rules) ids.push_back(r.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(OverlapIndex, EmptyHasNoOverlaps) {
  OverlapIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_TRUE(idx.overlapping(*Prefix::parse("10.0.0.0/8"), kAll).empty());
  EXPECT_FALSE(idx.has_overlap_above(Prefix::any(), kAll));
}

TEST(OverlapIndex, FindsAncestorOverlap) {
  OverlapIndex idx;
  idx.insert(make_rule(1, 5, "10.0.0.0/8"));
  auto hits = idx.overlapping(*Prefix::parse("10.1.0.0/16"), kAll);
  EXPECT_EQ(ids_of(hits), std::vector<net::RuleId>{1});
}

TEST(OverlapIndex, FindsDescendantOverlap) {
  OverlapIndex idx;
  idx.insert(make_rule(1, 5, "10.1.0.0/16"));
  auto hits = idx.overlapping(*Prefix::parse("10.0.0.0/8"), kAll);
  EXPECT_EQ(ids_of(hits), std::vector<net::RuleId>{1});
}

TEST(OverlapIndex, IgnoresDisjoint) {
  OverlapIndex idx;
  idx.insert(make_rule(1, 5, "11.0.0.0/8"));
  EXPECT_TRUE(idx.overlapping(*Prefix::parse("10.0.0.0/8"), kAll).empty());
}

TEST(OverlapIndex, PriorityBoundFilters) {
  OverlapIndex idx;
  idx.insert(make_rule(1, 3, "10.0.0.0/8"));
  idx.insert(make_rule(2, 7, "10.0.0.0/8"));
  auto hits = idx.overlapping(*Prefix::parse("10.1.0.0/16"), 5);
  EXPECT_EQ(ids_of(hits), std::vector<net::RuleId>{2});
  EXPECT_TRUE(idx.has_overlap_above(*Prefix::parse("10.1.0.0/16"), 5));
  EXPECT_FALSE(idx.has_overlap_above(*Prefix::parse("10.1.0.0/16"), 7));
}

TEST(OverlapIndex, SameNodeMultipleRules) {
  OverlapIndex idx;
  idx.insert(make_rule(1, 1, "10.0.0.0/8"));
  idx.insert(make_rule(2, 2, "10.0.0.0/8"));
  EXPECT_EQ(idx.size(), 2u);
  auto hits = idx.overlapping(*Prefix::parse("10.0.0.0/8"), kAll);
  EXPECT_EQ(ids_of(hits), (std::vector<net::RuleId>{1, 2}));
}

TEST(OverlapIndex, EraseRemovesOnlyTarget) {
  OverlapIndex idx;
  idx.insert(make_rule(1, 1, "10.0.0.0/8"));
  idx.insert(make_rule(2, 2, "10.0.0.0/8"));
  EXPECT_TRUE(idx.erase(1, *Prefix::parse("10.0.0.0/8")));
  EXPECT_EQ(idx.size(), 1u);
  auto hits = idx.overlapping(Prefix::any(), kAll);
  EXPECT_EQ(ids_of(hits), std::vector<net::RuleId>{2});
}

TEST(OverlapIndex, EraseMissingReturnsFalse) {
  OverlapIndex idx;
  idx.insert(make_rule(1, 1, "10.0.0.0/8"));
  EXPECT_FALSE(idx.erase(2, *Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(idx.erase(1, *Prefix::parse("11.0.0.0/8")));
  EXPECT_EQ(idx.size(), 1u);
}

TEST(OverlapIndex, EraseMaintainsMaxPriorityPruning) {
  OverlapIndex idx;
  idx.insert(make_rule(1, 10, "10.1.0.0/16"));
  idx.insert(make_rule(2, 3, "10.2.0.0/16"));
  EXPECT_TRUE(idx.has_overlap_above(*Prefix::parse("10.0.0.0/8"), 5));
  idx.erase(1, *Prefix::parse("10.1.0.0/16"));
  EXPECT_FALSE(idx.has_overlap_above(*Prefix::parse("10.0.0.0/8"), 5));
}

TEST(OverlapIndex, ClearResets) {
  OverlapIndex idx;
  idx.insert(make_rule(1, 1, "10.0.0.0/8"));
  idx.clear();
  EXPECT_TRUE(idx.empty());
  EXPECT_TRUE(idx.overlapping(Prefix::any(), kAll).empty());
}

TEST(OverlapIndex, DefaultRouteOverlapsEverything) {
  OverlapIndex idx;
  idx.insert(make_rule(1, 1, "0.0.0.0/0"));
  EXPECT_EQ(idx.overlapping(*Prefix::parse("203.0.113.0/24"), kAll).size(),
            1u);
  EXPECT_EQ(idx.overlapping(*Prefix::parse("255.255.255.255/32"), kAll)
                .size(),
            1u);
}

// Property: results agree with a brute-force scan over random rule sets
// under interleaved insert/erase.
class OverlapIndexProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(OverlapIndexProperty, MatchesBruteForce) {
  std::mt19937_64 rng(GetParam());
  OverlapIndex idx;
  std::vector<Rule> reference;
  net::RuleId next_id = 1;

  for (int step = 0; step < 400; ++step) {
    if (reference.empty() || rng() % 3 != 0) {
      Rule r{next_id++, static_cast<int>(rng() % 10),
             Prefix(net::Ipv4Address(static_cast<std::uint32_t>(rng())),
                    static_cast<int>(rng() % 17)),  // short => dense overlap
             net::forward_to(1)};
      idx.insert(r);
      reference.push_back(r);
    } else {
      std::size_t victim = rng() % reference.size();
      EXPECT_TRUE(
          idx.erase(reference[victim].id, reference[victim].match));
      reference.erase(reference.begin() +
                      static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_EQ(idx.size(), reference.size());

    Prefix probe(net::Ipv4Address(static_cast<std::uint32_t>(rng())),
                 static_cast<int>(rng() % 25));
    int bound = static_cast<int>(rng() % 10) - 1;
    std::vector<net::RuleId> expected;
    for (const Rule& r : reference)
      if (r.match.overlaps(probe) && r.priority > bound)
        expected.push_back(r.id);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(ids_of(idx.overlapping(probe, bound)), expected);
    EXPECT_EQ(idx.has_overlap_above(probe, bound), !expected.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapIndexProperty,
                         ::testing::Values(3, 14, 159, 2653));

}  // namespace
}  // namespace hermes::core
