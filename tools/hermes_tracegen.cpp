// hermes_tracegen: generate a control-plane trace file.
//
//   hermes_tracegen microbench <out.trace> [count] [rate] [overlap] [seed]
//   hermes_tracegen bgp        <out.trace> [router] [seconds] [seed]
//
// routers: equinix | telxatl | nwax | routeviews
// The output is the text format of workloads/trace_io.h, replayable with
// hermes_replay.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "workloads/bgp.h"
#include "workloads/microbench.h"
#include "workloads/trace_io.h"

using namespace hermes;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hermes_tracegen microbench <out.trace> [count=2000] [rate=1000]\n"
      "                  [overlap=0.5] [seed=1]\n"
      "  hermes_tracegen bgp <out.trace> [router=equinix] [seconds=30]\n"
      "                  [seed=0 (preset)]\n"
      "routers: equinix | telxatl | nwax | routeviews\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string kind = argv[1];
  std::string path = argv[2];

  workloads::RuleTrace trace;
  if (kind == "microbench") {
    workloads::MicroBenchConfig config;
    if (argc > 3) config.count = std::atoi(argv[3]);
    if (argc > 4) config.rate = std::atof(argv[4]);
    if (argc > 5) config.overlap_rate = std::atof(argv[5]);
    if (argc > 6) config.seed = std::strtoull(argv[6], nullptr, 10);
    trace = workloads::microbench_trace(config);
  } else if (kind == "bgp") {
    std::string router = argc > 3 ? argv[3] : "equinix";
    workloads::BgpFeedConfig config;
    if (router == "equinix")
      config = workloads::equinix_chicago();
    else if (router == "telxatl")
      config = workloads::telxatl_atlanta();
    else if (router == "nwax")
      config = workloads::nwax_portland();
    else if (router == "routeviews")
      config = workloads::route_views_oregon();
    else
      return usage();
    if (argc > 4) config.duration_s = std::atof(argv[4]);
    if (argc > 5 && std::strtoull(argv[5], nullptr, 10) != 0)
      config.seed = std::strtoull(argv[5], nullptr, 10);
    trace = workloads::fib_trace(workloads::bgp_feed(config));
  } else {
    return usage();
  }

  if (!workloads::save_trace(path, trace)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu events to %s\n", trace.size(), path.c_str());
  return 0;
}
