// Figure 14: ASIC (TCAM space) overhead percentage as a function of the
// requested performance guarantee (1 ms, 5 ms, 10 ms) per switch.
//
// Paper shape to reproduce: overheads vary across switches but remain
// small and acceptable; tighter guarantees cost more. (The Dell's sharp
// latency knee makes its shadow cheap; the HP's high base latency makes
// a 1 ms guarantee infeasible there.)
#include <cstdio>

#include "bench/common.h"
#include "hermes/qos_api.h"
#include "tcam/switch_model.h"

int main() {
  using namespace hermes;
  auto& rep = bench::report::open("fig14_asic_overhead", "pct");
  bench::header(
      "Figure 14: ASIC overhead percentage vs performance guarantee  "
      "[paper: Fig 14]");

  // TCAM sizes scaled to each ASIC (Table 1 header: 108 KB Firebolt-3 vs
  // 54 KB Trident+).
  const struct {
    const char* name;
    const tcam::SwitchModel* model;
    int capacity;
  } switches[] = {{"Dell 8132F", &tcam::dell_8132f(), 2000},
                  {"HP 5406zl", &tcam::hp_5406zl(), 3000},
                  {"Pica8 P3290", &tcam::pica8_p3290(), 4000}};

  core::QoSManager manager;
  int id = 1;
  for (auto& sw : switches) manager.register_switch(id++, *sw.model,
                                                    sw.capacity);

  std::printf("\n  %-14s %10s %10s %10s   (guarantee)\n", "switch", "1 ms",
              "5 ms", "10 ms");
  id = 1;
  for (auto& sw : switches) {
    std::printf("  %-14s", sw.name);
    for (double ms : {1.0, 5.0, 10.0}) {
      double overhead =
          manager.QoSOverheads(id, from_millis(ms), core::match_all());
      if (overhead < 0)
        std::printf(" %9s%%", "n/a");
      else
        std::printf(" %9.2f%%", overhead * 100);
      rep.row()
          .label("switch", sw.name)
          .value("guarantee_ms", ms)
          .value("overhead_pct", overhead < 0 ? -1.0 : overhead * 100);
    }
    std::printf("\n");
    ++id;
  }
  std::printf(
      "\n  paper shape: overheads differ per switch but stay small; the "
      "headline 5 ms guarantee costs <5%% on the Pica8\n");
  rep.write();
  return 0;
}
