// Consistent-update transactions under reroute storms: ez-Segway
// decentralized signaling (src/update/) vs the naive centralized
// two-phase baseline, on the Abilene and Geant ISP topologies.
//
// The storm is a fixed, seeded set of single-flow reroutes between
// k-shortest-path candidates (out-of-order reroutes — where the new path
// revisits shared nodes in reversed old-path order — are kept
// preferentially, since those are the ones a naive concurrent flip can
// transiently loop). Every transaction's operations feed a
// ConsistencyChecker mirror re-traced at each completion instant, so the
// bench measures both speed AND the transient-inconsistency window.
//
// Two kinds of output, deliberately separated:
//
//   * rows — per-(topology, strategy) cell: virtual completion times,
//     violation instants/windows, and wall clock. Wall clock is
//     machine-dependent; rows never value-gate.
//   * derived — virtual-time ratios, bit-identical across machines
//     (fixed storm seed, integer virtual clocks):
//       update_segway_speedup          mean two-phase completion / mean
//                                      ez-Segway completion (>1: segway
//                                      saves the controller round-trips)
//       update_segway_violation_free_rate  fraction of ez-Segway reroutes
//                                      with ZERO blackhole/loop instants
//                                      (the consistency theorem: 1.0)
//       update_two_phase_loop_rate     fraction of out-of-order reroutes
//                                      the two-phase baseline transiently
//                                      loops (guards the oracle: if this
//                                      collapses, the checker went blind)
//     These gate in CI against bench/baselines/BENCH_update.json.
//
// Usage: bench_update [--smoke] [output.json]
//   (default output: BENCH_update.json; --smoke skips the wall-clock
//    repetition rounds — the storm, and with it every derived
//    virtual-time metric, is identical in both modes)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/routing.h"
#include "net/rule.h"
#include "net/topology.h"
#include "net/update_plan.h"
#include "report.h"
#include "sim/event_queue.h"
#include "update/consistency_checker.h"
#include "update/update_coordinator.h"

namespace hermes::bench {
namespace {

using update::ConsistencyChecker;
using update::CoordinatorConfig;
using update::Strategy;
using update::TxnOutcome;
using update::UpdateCoordinator;

/// Rule-id space per flow: old rule at `node` = flow*kStride + node + 1,
/// new rule = flow*kStride + 500 + node + 1. The observer attributes an
/// op back to its flow by dividing the id out.
constexpr net::RuleId kFlowIdStride = 1000;

// Control-plane model (virtual time). Per-switch install latency spans
// 0.5-2 ms deterministically; an ez-Segway release signal crosses one
// ISP link (~200 us) while the two-phase controller pays a WAN
// round-trip per phase.
constexpr Duration kSignalDelay = 200 * kMicrosecond;
constexpr Duration kCtrlRtt = 8 * kMillisecond;
constexpr Duration kCtrlSendGap = 20 * kMicrosecond;

Duration switch_latency(net::NodeId sw) {
  return from_micros(500 + 100 * ((static_cast<std::uint64_t>(sw) *
                                   2654435761ULL >> 8) % 16));
}

struct Reroute {
  net::Path old_path;
  net::Path new_path;
  net::UpdatePlan plan;
};

/// The fixed reroute storm for one topology: k-shortest-path pairs for
/// every switch pair (deterministic order), keeping every out-of-order
/// combination plus up to two in-order ones per pair, capped.
std::vector<Reroute> build_storm(const net::Topology& topo,
                                 int max_reroutes) {
  std::vector<Reroute> storm;
  std::vector<net::NodeId> sws = topo.switches();
  for (std::size_t a = 0; a < sws.size() && static_cast<int>(storm.size()) <
                                                max_reroutes; ++a) {
    for (std::size_t b = a + 1; b < sws.size() &&
                                static_cast<int>(storm.size()) < max_reroutes;
         ++b) {
      std::vector<net::Path> paths =
          net::k_shortest_paths(topo, sws[a], sws[b], net::hop_count(), 4);
      int in_order_kept = 0;
      for (std::size_t i = 0; i < paths.size(); ++i) {
        for (std::size_t j = 0; j < paths.size(); ++j) {
          if (i == j || paths[i] == paths[j]) continue;
          net::UpdatePlan plan = net::plan_update(paths[i], paths[j]);
          bool ooo = plan.out_of_order();
          if (!ooo && in_order_kept >= 2) continue;
          if (!ooo) ++in_order_kept;
          storm.push_back({paths[i], paths[j], std::move(plan)});
          if (static_cast<int>(storm.size()) >= max_reroutes) return storm;
        }
      }
    }
  }
  return storm;
}

/// Per-switch rule tables with deterministic per-switch latency; every
/// op succeeds (bench measures ordering cost, not fault handling —
/// that's the update regression suite's job).
class Fabric {
 public:
  UpdateCoordinator::BatchDispatch batch_dispatch() {
    return [this](Time now, net::NodeId sw, net::FlowModBatch& batch) {
      for (std::size_t i = 0; i < batch.size(); ++i)
        batch.complete(i, now + switch_latency(sw), apply(sw, batch.mod(i)));
    };
  }
  UpdateCoordinator::ModDispatch mod_dispatch() {
    return [this](Time, net::NodeId sw, const net::FlowMod& mod) {
      apply(sw, mod);
    };
  }
  void install(net::NodeId sw, const net::Rule& rule) {
    tables_[sw][rule.id] = rule;
  }

 private:
  bool apply(net::NodeId sw, const net::FlowMod& mod) {
    std::map<net::RuleId, net::Rule>& t = tables_[sw];
    switch (mod.type) {
      case net::FlowModType::kInsert:
        t[mod.rule.id] = mod.rule;
        return true;
      case net::FlowModType::kModify: {
        auto it = t.find(mod.rule.id);
        if (it == t.end()) return false;
        it->second = mod.rule;
        return true;
      }
      case net::FlowModType::kDelete:
        return t.erase(mod.rule.id) > 0;
    }
    return false;
  }
  std::unordered_map<net::NodeId, std::map<net::RuleId, net::Rule>> tables_;
};

/// Wraps the ConsistencyChecker with per-flow violation WINDOWS: the
/// virtual time between the op that broke src->dst delivery and the op
/// that restored it.
class WindowTracker {
 public:
  ConsistencyChecker checker;

  void apply(Time t, int flow, net::NodeId sw, const net::FlowMod& mod,
             bool ok) {
    checker.apply(flow, sw, mod, ok);
    net::ForwardTrace trace = checker.trace(flow);
    State& s = states_[flow];
    bool bad = trace != net::ForwardTrace::kDelivered;
    if (trace == net::ForwardTrace::kLoop) s.looped = true;
    if (bad && !s.violating) {
      s.violating = true;
      s.since = t;
    } else if (!bad && s.violating) {
      s.violating = false;
      s.window += t - s.since;
    }
  }

  Duration total_window() const {
    Duration total = 0;
    for (const auto& [flow, s] : states_) total += s.window;
    return total;
  }
  int looped_flows() const {
    int n = 0;
    for (const auto& [flow, s] : states_) n += s.looped ? 1 : 0;
    return n;
  }
  bool flow_looped(int flow) const {
    auto it = states_.find(flow);
    return it != states_.end() && it->second.looped;
  }
  bool flow_clean(int flow) const {
    auto it = states_.find(flow);
    return it == states_.end() || (!it->second.looped && it->second.window == 0
                                   && !it->second.violating);
  }

 private:
  struct State {
    bool violating = false;
    bool looped = false;
    Time since = 0;
    Duration window = 0;
  };
  std::map<int, State> states_;
};

struct StormStats {
  int reroutes = 0;
  int out_of_order = 0;
  int committed = 0;
  double mean_completion_us = 0.0;  ///< virtual, mean over transactions
  double makespan_ms = 0.0;         ///< virtual, storm begin -> last commit
  std::int64_t violation_instants = 0;
  double violation_window_us = 0.0;  ///< virtual, summed over flows
  int looped_flows = 0;
  int clean_flows = 0;      ///< flows with zero violation window/instants
  int ooo_looped = 0;       ///< out-of-order reroutes that looped
  double wall_ms = 0.0;
};

/// Runs the whole storm through one coordinator: transaction k begins
/// 50 us after k-1 (a burst, so transactions overlap in flight).
StormStats run_storm(const std::vector<Reroute>& storm,
                     const CoordinatorConfig& config) {
  sim::EventQueue events;
  Fabric fabric;
  WindowTracker tracker;
  UpdateCoordinator coordinator(events, fabric.batch_dispatch(),
                                fabric.mod_dispatch(), config);
  coordinator.set_observer(
      [&](Time t, net::NodeId sw, const net::FlowMod& mod, bool ok) {
        int flow = static_cast<int>(mod.rule.id / kFlowIdStride);
        tracker.apply(t, flow, sw, mod, ok);
      });

  std::vector<TxnOutcome> outcomes;
  outcomes.reserve(storm.size());
  for (std::size_t f = 0; f < storm.size(); ++f) {
    const Reroute& r = storm[f];
    UpdateCoordinator::TxnRequest req;
    req.plan = r.plan;
    net::RuleId base = static_cast<net::RuleId>(f) * kFlowIdStride;
    for (std::size_t i = 0; i + 1 < r.old_path.size(); ++i) {
      net::Rule rule{base + r.old_path[i] + 1, 1, {},
                     net::forward_to(static_cast<int>(r.old_path[i + 1]))};
      req.old_rules.emplace(r.old_path[i], rule);
      fabric.install(r.old_path[i], rule);
    }
    for (std::size_t i = 0; i + 1 < r.new_path.size(); ++i)
      req.new_rules.emplace(
          r.new_path[i],
          net::Rule{base + 500 + r.new_path[i] + 1, 1, {},
                    net::forward_to(static_cast<int>(r.new_path[i + 1]))});
    tracker.checker.add_flow(static_cast<int>(f), r.old_path);
    Time begin_at = static_cast<Time>(f) * from_micros(50);
    events.schedule(begin_at, [&coordinator, &outcomes,
                               req = std::move(req)](Time now) mutable {
      coordinator.begin(now, std::move(req),
                        [&outcomes](Time, const TxnOutcome& out) {
                          outcomes.push_back(out);
                        });
    });
  }

  auto start = std::chrono::steady_clock::now();
  events.run_all();
  auto end = std::chrono::steady_clock::now();

  StormStats stats;
  stats.reroutes = static_cast<int>(storm.size());
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  double completion_sum_us = 0.0;
  Time last_done = 0;
  for (const TxnOutcome& out : outcomes) {
    if (!out.committed) continue;
    ++stats.committed;
    completion_sum_us += static_cast<double>(out.done - out.begin) / 1e3;
    if (out.done > last_done) last_done = out.done;
  }
  if (stats.committed > 0)
    stats.mean_completion_us = completion_sum_us / stats.committed;
  stats.makespan_ms = static_cast<double>(last_done) / 1e6;
  stats.violation_instants = tracker.checker.violation_instants();
  stats.violation_window_us =
      static_cast<double>(tracker.total_window()) / 1e3;
  stats.looped_flows = tracker.looped_flows();
  for (std::size_t f = 0; f < storm.size(); ++f) {
    if (storm[f].plan.out_of_order()) {
      ++stats.out_of_order;
      if (tracker.flow_looped(static_cast<int>(f))) ++stats.ooo_looped;
    }
    if (tracker.flow_clean(static_cast<int>(f))) ++stats.clean_flows;
  }
  return stats;
}

CoordinatorConfig segway_config() {
  CoordinatorConfig c;
  c.strategy = Strategy::kSegway;
  c.signal_delay = kSignalDelay;
  return c;
}

CoordinatorConfig two_phase_config() {
  CoordinatorConfig c;
  c.strategy = Strategy::kTwoPhase;
  c.ctrl_rtt = kCtrlRtt;
  c.ctrl_send_gap = kCtrlSendGap;
  return c;
}

}  // namespace
}  // namespace hermes::bench

int main(int argc, char** argv) {
  using namespace hermes::bench;
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  auto& rep = hermes::bench::report::open("update", "us");
  std::printf("consistent network updates: ez-Segway vs naive two-phase%s\n",
              smoke ? " [smoke]" : "");
  std::printf("virtual-time derived ratios gate in CI; wall-clock rows do "
              "not\n\n");

  struct Cell {
    const char* topo;
    const char* strategy;
    StormStats stats;
  };
  std::vector<Cell> cells;
  // Full mode repeats each storm for wall-clock stability; the virtual
  // numbers are identical every round (fixed storm, integer clocks), so
  // --smoke's single round changes no derived metric.
  const int rounds = smoke ? 1 : 5;
  const std::pair<const char*, hermes::net::Topology> topologies[] = {
      {"abilene", hermes::net::abilene()},
      {"geant", hermes::net::geant()},
  };
  for (const auto& [name, topo] : topologies) {
    std::vector<Reroute> storm = build_storm(topo, /*max_reroutes=*/120);
    for (const char* strategy : {"segway", "two_phase"}) {
      CoordinatorConfig config = std::string(strategy) == "segway"
                                     ? segway_config()
                                     : two_phase_config();
      StormStats stats;
      double best_wall = 0.0;
      for (int r = 0; r < rounds; ++r) {
        StormStats run = run_storm(storm, config);
        if (r == 0 || run.wall_ms < best_wall) best_wall = run.wall_ms;
        stats = run;
      }
      stats.wall_ms = best_wall;
      std::printf(
          "  %-8s %-10s reroutes=%3d (ooo=%2d) committed=%3d  "
          "mean=%8.1f us  makespan=%6.2f ms  violations=%3lld "
          "(window=%8.1f us, loops=%d)\n",
          name, strategy, stats.reroutes, stats.out_of_order,
          stats.committed, stats.mean_completion_us, stats.makespan_ms,
          static_cast<long long>(stats.violation_instants),
          stats.violation_window_us, stats.looped_flows);
      rep.row()
          .label("topology", name)
          .label("strategy", strategy)
          .value("reroutes", stats.reroutes)
          .value("out_of_order", stats.out_of_order)
          .value("committed", stats.committed)
          .value("mean_completion_us", stats.mean_completion_us)
          .value("makespan_ms", stats.makespan_ms)
          .value("violation_instants",
                 static_cast<double>(stats.violation_instants))
          .value("violation_window_us", stats.violation_window_us)
          .value("looped_flows", stats.looped_flows)
          .value("wall_ms", stats.wall_ms);
      cells.push_back({name, strategy, stats});
    }
  }

  // Aggregate the derived virtual-time ratios across both topologies.
  double segway_completion = 0.0, two_phase_completion = 0.0;
  int segway_n = 0, two_phase_n = 0;
  int segway_clean = 0, segway_flows = 0;
  int ooo_total = 0, ooo_looped = 0;
  bool all_committed = true;
  for (const Cell& cell : cells) {
    all_committed &= cell.stats.committed == cell.stats.reroutes;
    if (std::string(cell.strategy) == "segway") {
      segway_completion += cell.stats.mean_completion_us * cell.stats.committed;
      segway_n += cell.stats.committed;
      segway_clean += cell.stats.clean_flows;
      segway_flows += cell.stats.reroutes;
    } else {
      two_phase_completion +=
          cell.stats.mean_completion_us * cell.stats.committed;
      two_phase_n += cell.stats.committed;
      ooo_total += cell.stats.out_of_order;
      ooo_looped += cell.stats.ooo_looped;
    }
  }
  double speedup = (segway_n > 0 && two_phase_n > 0 && segway_completion > 0)
                       ? (two_phase_completion / two_phase_n) /
                             (segway_completion / segway_n)
                       : 0.0;
  double violation_free =
      segway_flows > 0 ? static_cast<double>(segway_clean) / segway_flows
                       : 0.0;
  double loop_rate =
      ooo_total > 0 ? static_cast<double>(ooo_looped) / ooo_total : 0.0;

  rep.derived("update_segway_speedup", speedup);
  rep.derived("update_segway_violation_free_rate", violation_free);
  rep.derived("update_two_phase_loop_rate", loop_rate);
  std::printf(
      "\nsegway speedup %.2fx over two-phase; segway violation-free rate "
      "%.3f; two-phase loops on %.0f%% of out-of-order reroutes\n",
      speedup, violation_free, loop_rate * 100.0);
  rep.write(out_path);

  // Correctness gate: every transaction commits, ez-Segway never
  // violates, the baseline demonstrably loops somewhere.
  bool ok = all_committed && violation_free == 1.0 && speedup > 1.0 &&
            ooo_total > 0 && ooo_looped > 0;
  if (!ok) std::printf("FAIL: update bench invariants not met\n");
  return ok ? 0 : 1;
}
