// ESPRES [Perešíni et al., HotSDN'14]: transparent SDN update scheduling.
//
// ESPRES does not touch the TCAM or the rules themselves; it REORDERS
// pending updates to reduce installation cost. Our reimplementation
// batches the updates that arrive within a scheduling window and flushes
// them sorted by descending priority: under the shift-based TCAM
// mechanics each batched rule then lands at the bottom of the occupied
// region, avoiding intra-batch shifting. Pre-existing lower-priority
// entries still force shifts, which is why ESPRES degrades as the table
// fills (the Figure 11 divergence).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "baselines/switch_backend.h"
#include "tcam/asic.h"

namespace hermes::baselines {

class EspresSwitch final : public SwitchBackend {
 public:
  EspresSwitch(const tcam::SwitchModel& model, int tcam_capacity,
               Duration batch_window = from_millis(10));

  Time handle(Time now, const net::FlowMod& mod) override;
  /// The transaction joins the current scheduling window as one unit:
  /// every insert lands in the same flush (completing at the window
  /// deadline); deletes/modifies pass through at per-op cost.
  Time handle_batch(Time now, net::FlowModBatch& batch) override;
  void tick(Time now) override;
  using SwitchBackend::lookup;
  std::optional<net::Rule> lookup(net::Ipv4Address addr) override;
  const net::Rule* lookup_ptr(Time now, net::Ipv4Address addr) override;
  std::string_view name() const override { return "ESPRES"; }
  const std::vector<Duration>& rit_samples() const override {
    return rit_samples_;
  }
  void clear_rit_samples() override { rit_samples_.clear(); }
  void set_fault_plan(fault::FaultPlan* plan) override {
    asic_.set_fault_plan(plan);
  }

  /// Forces the pending batch out (end-of-run drain).
  Time flush(Time now);

  int occupancy() const { return asic_.slice(0).occupancy(); }
  tcam::Asic& asic() { return asic_; }
  /// Per-op TCAM bookkeeping counters (Fig 15-style overhead accounting).
  const tcam::TableStats& table_stats() const {
    return asic_.slice(0).stats();
  }

 private:
  struct Pending {
    Time arrival;
    net::FlowMod mod;
  };

  std::string name_;
  tcam::Asic asic_;
  Duration batch_window_;
  Time window_deadline_ = 0;
  std::vector<Pending> pending_;
  std::vector<Duration> rit_samples_;
};

}  // namespace hermes::baselines
