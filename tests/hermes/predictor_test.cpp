#include "hermes/predictor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace hermes::core {
namespace {

std::vector<double> constant_series(double v, int n) {
  return std::vector<double>(static_cast<std::size_t>(n), v);
}

std::vector<double> linear_series(double start, double slope, int n) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) out.push_back(start + slope * i);
  return out;
}

TEST(Ewma, EmptyHistoryPredictsZero) {
  EwmaPredictor p;
  EXPECT_EQ(p.predict({}), 0.0);
}

TEST(Ewma, ConstantSeriesPredictsConstant) {
  EwmaPredictor p(0.3);
  auto s = constant_series(42, 20);
  EXPECT_NEAR(p.predict(s), 42.0, 1e-9);
}

TEST(Ewma, LagsBehindTrend) {
  EwmaPredictor p(0.3);
  auto s = linear_series(0, 10, 20);  // ...170, 180, 190
  double pred = p.predict(s);
  EXPECT_LT(pred, 190.0);  // EWMA systematically under-predicts a ramp
  EXPECT_GT(pred, 100.0);
}

TEST(Ewma, AlphaOneTracksLastValue) {
  EwmaPredictor p(1.0);
  std::vector<double> s{5, 9, 1, 33};
  EXPECT_NEAR(p.predict(s), 33.0, 1e-9);
}

TEST(CubicSpline, EmptyAndTinyHistories) {
  CubicSplinePredictor p;
  EXPECT_EQ(p.predict({}), 0.0);
  std::vector<double> one{7};
  EXPECT_NEAR(p.predict(one), 7.0, 1e-9);
  std::vector<double> two{4, 6};
  EXPECT_NEAR(p.predict(two), 8.0, 1e-9);  // linear continuation
}

TEST(CubicSpline, ConstantSeriesPredictsConstant) {
  CubicSplinePredictor p;
  auto s = constant_series(13, 10);
  EXPECT_NEAR(p.predict(s), 13.0, 1e-6);
}

TEST(CubicSpline, ExtrapolatesLinearTrendExactly) {
  // A natural spline through collinear points is the straight line, so
  // extrapolation continues it exactly — splines track ramps that EWMA
  // lags on. That difference is why the paper found splines best (§8.6).
  CubicSplinePredictor p;
  auto s = linear_series(100, 25, 8);  // last = 275, next = 300
  EXPECT_NEAR(p.predict(s), 300.0, 1e-6);
}

TEST(CubicSpline, NeverReturnsNegative) {
  CubicSplinePredictor p;
  std::vector<double> s{100, 50, 10, 1};  // steep decay extrapolates < 0
  EXPECT_GE(p.predict(s), 0.0);
}

TEST(Arma, EmptyHistoryPredictsZero) {
  ArmaPredictor p;
  EXPECT_EQ(p.predict({}), 0.0);
}

TEST(Arma, ConstantSeriesPredictsConstant) {
  ArmaPredictor p;
  auto s = constant_series(21, 40);
  EXPECT_NEAR(p.predict(s), 21.0, 1e-6);
}

TEST(Arma, TracksAlternatingPattern) {
  // AR models shine on oscillations: a strict +A/-A alternation has
  // phi_1 = -1 and is perfectly predictable.
  ArmaPredictor p(3, 32);
  std::vector<double> s;
  for (int i = 0; i < 32; ++i) s.push_back(i % 2 == 0 ? 100.0 : 20.0);
  // Last value was s[31] (odd index -> 20), next should be near 100.
  EXPECT_NEAR(p.predict(s), 100.0, 15.0);
}

TEST(Arma, ShortHistoryFallsBackGracefully) {
  ArmaPredictor p(3, 32);
  std::vector<double> s{8};
  EXPECT_NEAR(p.predict(s), 8.0, 1e-9);
}

TEST(Correctors, SlackInflatesMultiplicatively) {
  SlackCorrector slack(0.4);
  EXPECT_NEAR(slack.correct(1000), 1400.0, 1e-9);  // the paper's example
  EXPECT_EQ(SlackCorrector(0).correct(55), 55);
}

TEST(Correctors, DeadzoneInflatesAdditively) {
  DeadzoneCorrector dz(100);
  EXPECT_NEAR(dz.correct(1000), 1100.0, 1e-9);  // the paper's example
}

TEST(GrowthEstimator, ObserveAndPredict) {
  GrowthEstimator est(std::make_unique<EwmaPredictor>(1.0),
                      std::make_unique<SlackCorrector>(0.5));
  est.observe(10);
  est.observe(20);
  EXPECT_NEAR(est.raw_prediction(), 20.0, 1e-9);
  EXPECT_NEAR(est.predicted_next(), 30.0, 1e-9);
}

TEST(GrowthEstimator, HistoryIsBounded) {
  GrowthEstimator est(std::make_unique<EwmaPredictor>(),
                      std::make_unique<SlackCorrector>(0.0),
                      /*max_history=*/4);
  for (int i = 0; i < 10; ++i) est.observe(i);
  EXPECT_EQ(est.history().size(), 4u);
  EXPECT_EQ(est.history()[0], 6.0);
}

TEST(GrowthEstimator, ResetClears) {
  GrowthEstimator est(std::make_unique<EwmaPredictor>(),
                      std::make_unique<DeadzoneCorrector>(5));
  est.observe(50);
  est.reset();
  EXPECT_TRUE(est.history().empty());
  EXPECT_NEAR(est.predicted_next(), 5.0, 1e-9);  // 0 + deadzone
}

TEST(Factories, KnownNamesResolve) {
  EXPECT_NE(make_predictor("EWMA"), nullptr);
  EXPECT_NE(make_predictor("CubicSpline"), nullptr);
  EXPECT_NE(make_predictor("ARMA"), nullptr);
  EXPECT_EQ(make_predictor("oracle"), nullptr);
  EXPECT_NE(make_corrector("Slack", 1.0), nullptr);
  EXPECT_NE(make_corrector("Deadzone", 10), nullptr);
  EXPECT_EQ(make_corrector("psychic", 0), nullptr);
}

// Section 8.6's qualitative claim: on trending workloads the spline's
// prediction error beats EWMA's.
TEST(PredictorComparison, SplineBeatsEwmaOnRamps) {
  CubicSplinePredictor spline;
  EwmaPredictor ewma(0.3);
  std::mt19937_64 rng(99);
  std::normal_distribution<double> noise(0, 3);
  double spline_err = 0, ewma_err = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> s;
    double slope = 5 + static_cast<double>(trial % 7);
    for (int i = 0; i < 12; ++i) s.push_back(50 + slope * i + noise(rng));
    double truth = 50 + slope * 12;
    spline_err += std::abs(spline.predict(s) - truth);
    ewma_err += std::abs(ewma.predict(s) - truth);
  }
  EXPECT_LT(spline_err, ewma_err);
}

// Predictors must stay finite and non-negative on adversarial inputs.
class PredictorRobustness
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PredictorRobustness, AdversarialInputsStaySane) {
  auto p = make_predictor(GetParam());
  ASSERT_NE(p, nullptr);
  std::mt19937_64 rng(5);
  std::vector<std::vector<double>> cases = {
      {},
      {0},
      {0, 0, 0, 0, 0, 0, 0, 0},
      {1e12, 0, 1e12, 0, 1e12},
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512},
  };
  std::vector<double> random_case;
  for (int i = 0; i < 100; ++i)
    random_case.push_back(static_cast<double>(rng() % 10000));
  cases.push_back(random_case);
  for (const auto& c : cases) {
    double v = p->predict(c);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(All, PredictorRobustness,
                         ::testing::Values("EWMA", "CubicSpline", "ARMA"));

}  // namespace
}  // namespace hermes::core
