// Differential fuzz: the hierarchy under churn vs a monolithic software
// table. The hierarchy's cache mode must answer every classification
// exactly like one flat LookupEngine over the same rules — that is the
// whole point of the dependency-closure invariant. verify_lookups doubles
// the check inside the hierarchy (cache.dependency_violations), and the
// external oracle here catches anything the internal one is blind to
// (e.g. the software tier itself corrupting).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/cache_hierarchy.h"
#include "tcam/lookup_engine.h"
#include "tcam/switch_model.h"

namespace hermes::cache {
namespace {

using net::FlowMod;
using net::FlowModType;
using net::Prefix;
using net::Rule;

std::uint64_t next_state(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545F4914F6CDD1Dull;
}

/// Monolithic reference: one flat engine + the rule map, mirroring the
/// hierarchy's software-tier stamping (modify = erase + insert with a
/// FRESH seq, exactly like CacheHierarchy::handle's decomposition).
class Oracle {
 public:
  void insert(const Rule& rule) {
    erase(rule.id);
    engine_.insert(rule, seq_);
    rules_.emplace(rule.id, rule);
    ++seq_;
  }
  void erase(net::RuleId id) {
    auto it = rules_.find(id);
    if (it == rules_.end()) return;
    engine_.erase(it->second);
    rules_.erase(it);
  }
  const net::Rule* lookup(net::Ipv4Address addr) const {
    return engine_.lookup(addr);
  }
  std::size_t size() const { return rules_.size(); }

 private:
  tcam::LookupEngine engine_;
  std::unordered_map<net::RuleId, Rule> rules_;
  std::uint64_t seq_ = 0;
};

/// Rules drawn from a small laminar universe (10.0.0.0/8 and below) so
/// overlaps, equal priorities, and closure chains all occur constantly.
Rule fuzz_rule(std::uint64_t& state, net::RuleId id) {
  static constexpr int kLengths[] = {8, 12, 16, 24, 32, 32, 32};
  int length = kLengths[next_state(state) % 7];
  std::uint32_t addr =
      0x0A000000u |
      (static_cast<std::uint32_t>(next_state(state)) & 0x0000FFFFu);
  int priority = static_cast<int>(next_state(state) % 8);
  int port = static_cast<int>(next_state(state) % 16);
  return Rule{id, priority, Prefix(net::Ipv4Address(addr), length),
              net::forward_to(port)};
}

net::Ipv4Address fuzz_addr(std::uint64_t& state) {
  return net::Ipv4Address(
      0x0A000000u |
      (static_cast<std::uint32_t>(next_state(state)) & 0x0000FFFFu));
}

void run_fuzz(PolicyKind policy, std::uint64_t seed) {
  CacheConfig config;
  config.mode = Mode::kCache;
  config.policy = policy;
  config.verify_lookups = true;
  config.closure_limit = 8;
  CacheHierarchy h(tcam::pica8_p3290(), 32, config);
  Oracle oracle;

  std::uint64_t state = seed;
  Time now = 0;
  constexpr int kOps = 6000;
  constexpr net::RuleId kIdSpace = 300;  // small: collisions guaranteed
  for (int op = 0; op < kOps; ++op) {
    now += from_micros(50);
    const std::uint64_t dice = next_state(state) % 100;
    net::RuleId id = 1 + next_state(state) % kIdSpace;
    if (dice < 45) {
      Rule r = fuzz_rule(state, id);
      h.handle(now, {FlowModType::kInsert, r});
      oracle.insert(r);
    } else if (dice < 65) {
      h.handle(now, {FlowModType::kDelete, Rule{id, 0, {}, {}}});
      oracle.erase(id);
    } else if (dice < 75) {
      Rule r = fuzz_rule(state, id);
      h.handle(now, {FlowModType::kModify, r});
      // The hierarchy's modify is erase + fresh insert; on an unknown id
      // the erase is a no-op and the insert creates the rule — mirror
      // exactly.
      oracle.erase(id);
      oracle.insert(r);
    } else {
      // Classification burst: drives hits, misses, and promotions.
      for (int i = 0; i < 4; ++i) {
        net::Ipv4Address addr = fuzz_addr(state);
        auto res = h.classify(now, addr);
        const net::Rule* want = oracle.lookup(addr);
        if (want == nullptr) {
          ASSERT_EQ(res.rule, nullptr) << "op " << op;
        } else {
          ASSERT_NE(res.rule, nullptr) << "op " << op;
          ASSERT_EQ(res.rule->id, want->id) << "op " << op;
        }
      }
    }
    if (op % 64 == 0) {
      h.tick(now);
      ASSERT_TRUE(h.check_invariant())
          << policy_name(policy) << " op " << op;
    }
  }
  h.tick(now);
  EXPECT_TRUE(h.check_invariant());
  EXPECT_EQ(h.total_rules(), oracle.size());
  EXPECT_EQ(h.dependency_violations(), 0u) << policy_name(policy);
  // The churn must actually have exercised the cache machinery.
  EXPECT_GT(h.promotions(), 0u) << policy_name(policy);
  EXPECT_GT(h.hits() + h.misses(), 0u);
}

TEST(CacheOracleFuzz, LruMatchesMonolithicTable) {
  run_fuzz(PolicyKind::kLru, 0xC0FFEE01);
}

TEST(CacheOracleFuzz, LfuMatchesMonolithicTable) {
  run_fuzz(PolicyKind::kLfu, 0xC0FFEE02);
}

TEST(CacheOracleFuzz, FdrcMatchesMonolithicTable) {
  run_fuzz(PolicyKind::kFdrc, 0xC0FFEE03);
}

TEST(CacheOracleFuzz, FdrcSecondSeedMatchesMonolithicTable) {
  run_fuzz(PolicyKind::kFdrc, 0xDEADBEEF);
}

}  // namespace
}  // namespace hermes::cache
