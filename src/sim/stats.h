// Small statistics helpers shared by tests and the benchmark harnesses
// (CDFs and percentile summaries in the paper's reporting format).
#pragma once

#include <string>
#include <vector>

namespace hermes::sim {

/// q in [0, 1]; linear interpolation between order statistics.
/// Returns 0 for an empty sample.
double percentile(std::vector<double> samples, double q);

struct Summary {
  std::size_t count = 0;
  double min = 0;
  double median = 0;
  double mean = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

Summary summarize(const std::vector<double>& samples);

/// CDF evaluated at `points` evenly spaced quantiles, as
/// (value, cumulative_probability) pairs — one row per paper CDF line.
/// The first row is the (min, 0) anchor and the last the (max, 1) point,
/// so both tails of the plotted curve are exact.
std::vector<std::pair<double, double>> cdf(
    const std::vector<double>& samples, int points = 20);

/// Formats a one-line summary: "name: n=.. med=.. p95=.. p99=.. max=..".
std::string format_summary(const std::string& name, const Summary& s,
                           const std::string& unit);

}  // namespace hermes::sim
