#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py gating behavior.

Runs the tool as a subprocess against temp BENCH json pairs and checks
exit codes: 0 = ok, 1 = gated regression / missing / non-numeric metric.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, os.pardir, "tools", "bench_compare.py")


def doc(derived=None, results=None):
    return {
        "schema_version": 1,
        "benchmark": "unit_test_bench",
        "derived": derived or {},
        "results": results or [],
    }


def run_compare(base_doc, cand_doc, *extra_args):
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.json")
        cand_path = os.path.join(tmp, "cand.json")
        with open(base_path, "w", encoding="utf-8") as fh:
            json.dump(base_doc, fh)
        with open(cand_path, "w", encoding="utf-8") as fh:
            json.dump(cand_doc, fh)
        proc = subprocess.run(
            [sys.executable, TOOL, base_path, cand_path, *extra_args],
            capture_output=True, text=True)
    return proc


class BenchCompareTest(unittest.TestCase):
    def test_identical_docs_pass(self):
        d = doc(derived={"hermes_speedup": 4.0})
        proc = run_compare(d, d)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_improvement_passes(self):
        proc = run_compare(doc(derived={"hermes_speedup": 4.0}),
                           doc(derived={"hermes_speedup": 5.0}))
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_regression_beyond_threshold_fails(self):
        proc = run_compare(doc(derived={"hermes_speedup": 4.0}),
                           doc(derived={"hermes_speedup": 2.0}))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("regression", proc.stderr)

    def test_lower_is_better_direction(self):
        # No higher-is-better token in the name: a drop is an improvement.
        proc = run_compare(doc(derived={"median_ns": 100.0}),
                           doc(derived={"median_ns": 50.0}))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        proc = run_compare(doc(derived={"median_ns": 100.0}),
                           doc(derived={"median_ns": 200.0}))
        self.assertEqual(proc.returncode, 1)

    def test_missing_derived_metric_fails(self):
        proc = run_compare(doc(derived={"hermes_speedup": 4.0}),
                           doc(derived={}))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing from", proc.stderr)

    def test_non_numeric_derived_metric_fails(self):
        # report.h serializes NaN/inf as null; that must gate, not skip.
        proc = run_compare(doc(derived={"hermes_speedup": 4.0}),
                           doc(derived={"hermes_speedup": None}))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("non-numeric", proc.stderr)

    def test_non_numeric_row_field_fails_by_default(self):
        # Structural breakage in rows gates even under --gate derived: a
        # bench whose row field turned null is broken, not noisy.
        base = doc(results=[{"case": "a", "ns": 10.0}])
        cand = doc(results=[{"case": "a", "ns": None}])
        proc = run_compare(base, cand)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("non-numeric", proc.stderr)

    def test_missing_row_field_fails_by_default(self):
        base = doc(results=[{"case": "a", "ns": 10.0}])
        cand = doc(results=[{"case": "a"}])
        proc = run_compare(base, cand)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing from", proc.stderr)

    def test_missing_row_fails_by_default(self):
        base = doc(results=[{"case": "a", "ns": 10.0},
                            {"case": "b", "ns": 20.0}])
        cand = doc(results=[{"case": "a", "ns": 10.0}])
        proc = run_compare(base, cand)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("row[b]", proc.stderr)

    def test_row_value_regression_ungated_by_default(self):
        # VALUE changes in rows are machine-dependent: reported, no gate.
        base = doc(results=[{"case": "a", "ns": 10.0}])
        cand = doc(results=[{"case": "a", "ns": 100.0}])
        proc = run_compare(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("worse", proc.stdout)

    def test_row_value_regression_fails_with_gate_all(self):
        base = doc(results=[{"case": "a", "ns": 10.0}])
        cand = doc(results=[{"case": "a", "ns": 100.0}])
        proc = run_compare(base, cand, "--gate", "all")
        self.assertEqual(proc.returncode, 1)

    def test_benchmark_name_mismatch_is_usage_error(self):
        base = doc()
        cand = dict(doc(), benchmark="other_bench")
        proc = run_compare(base, cand)
        self.assertEqual(proc.returncode, 2)


class WriteBaselineTest(unittest.TestCase):
    def run_write(self, cand_doc, base_doc=None):
        """Run --write-baseline; returns (proc, written-doc-or-None)."""
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            cand_path = os.path.join(tmp, "cand.json")
            if base_doc is not None:
                with open(base_path, "w", encoding="utf-8") as fh:
                    json.dump(base_doc, fh)
            with open(cand_path, "w", encoding="utf-8") as fh:
                json.dump(cand_doc, fh)
            proc = subprocess.run(
                [sys.executable, TOOL, base_path, cand_path,
                 "--write-baseline"],
                capture_output=True, text=True)
            written = None
            if os.path.exists(base_path):
                with open(base_path, "r", encoding="utf-8") as fh:
                    written = json.load(fh)
        return proc, written

    def test_creates_missing_baseline(self):
        cand = doc(derived={"hermes_speedup": 4.0},
                   results=[{"case": "a", "ns": 10.0}])
        proc, written = self.run_write(cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(written, cand)
        self.assertIn("hermes_speedup", proc.stdout)

    def test_overwrites_same_benchmark(self):
        old = doc(derived={"hermes_speedup": 2.0})
        new = doc(derived={"hermes_speedup": 4.0})
        proc, written = self.run_write(new, base_doc=old)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(written["derived"]["hermes_speedup"], 4.0)

    def test_written_baseline_round_trips_through_compare(self):
        # The regenerated file must be a valid comparison baseline.
        cand = doc(derived={"hermes_speedup": 4.0},
                   results=[{"case": "a", "ns": 10.0}])
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            cand_path = os.path.join(tmp, "cand.json")
            with open(cand_path, "w", encoding="utf-8") as fh:
                json.dump(cand, fh)
            write = subprocess.run(
                [sys.executable, TOOL, base_path, cand_path,
                 "--write-baseline"], capture_output=True, text=True)
            self.assertEqual(write.returncode, 0, write.stderr)
            compare = subprocess.run(
                [sys.executable, TOOL, base_path, cand_path],
                capture_output=True, text=True)
        self.assertEqual(compare.returncode, 0, compare.stderr)

    def test_refuses_cross_benchmark_overwrite(self):
        old = doc(derived={"hermes_speedup": 2.0})
        new = dict(doc(derived={"hermes_speedup": 4.0}),
                   benchmark="other_bench")
        proc, written = self.run_write(new, base_doc=old)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("refusing", proc.stderr)
        # The existing baseline is untouched.
        self.assertEqual(written["benchmark"], "unit_test_bench")
        self.assertEqual(written["derived"]["hermes_speedup"], 2.0)

    def test_refuses_non_numeric_derived(self):
        cand = doc(derived={"hermes_speedup": None})
        proc, written = self.run_write(cand)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("non-numeric", proc.stderr)
        self.assertIsNone(written)

    def test_refuses_bad_schema(self):
        cand = dict(doc(derived={"x": 1.0}), schema_version=2)
        proc, written = self.run_write(cand)
        self.assertEqual(proc.returncode, 2)
        self.assertIsNone(written)

    def test_refuses_missing_benchmark_name(self):
        cand = doc(derived={"x": 1.0})
        del cand["benchmark"]
        proc, written = self.run_write(cand)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("benchmark name", proc.stderr)
        self.assertIsNone(written)


if __name__ == "__main__":
    unittest.main()
