// The Gate Keeper (Section 3): admission control and insertion routing.
//
// Every flow-mod passes through the Gate Keeper, which decides whether the
// rule takes the guaranteed path (shadow table) or falls back to the main
// table. Fallbacks happen when (a) the rule does not match the configured
// guarantee predicate, (b) the Section 4.2 lowest-priority optimization
// applies, (c) the shadow table cannot absorb the rule, or (d) the
// controller exceeds the agreed rate (token bucket). The token bucket is
// consulted LAST so that rejections for other reasons never consume
// admitted-rate budget.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hermes/config.h"
#include "net/rule.h"
#include "net/time.h"
#include "obs/metrics.h"

namespace hermes::core {

/// Continuous-refill token bucket.
class TokenBucket {
 public:
  /// `rate` tokens per second, capacity `burst` tokens (starts full).
  TokenBucket(double rate, double burst);

  /// Takes one token if available at `now`; false = over-rate.
  bool try_take(Time now);

  /// Takes up to `n` tokens in ONE evaluation at `now` (one refill, one
  /// debit) and returns how many were taken: min(n, floor(tokens)).
  /// Equivalent to n successive try_take(now) calls — refill at a fixed
  /// `now` is idempotent — but makes batch admission a single decision.
  int try_take_n(Time now, int n);

  /// Tokens available at `now` (without consuming).
  double available(Time now) const;

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill(Time now);

  double rate_;
  double burst_;
  double tokens_;
  Time last_refill_ = 0;
};

/// Why the Gate Keeper routed a rule where it did.
enum class Route : std::uint8_t {
  kGuaranteed,       ///< shadow table, guarantee applies
  kMainUnmatched,    ///< predicate did not select the rule
  kMainOverRate,     ///< token bucket empty: over the agreed rate
  kMainLowestPrio,   ///< Section 4.2 optimization: bottom-of-table append
  kMainShadowFull,   ///< shadow table cannot absorb the rule (violation)
};

/// Facts about current table state the routing decision depends on.
struct RouteContext {
  int shadow_free = 0;        ///< free slots in the shadow table
  int pieces_needed = 1;      ///< partitions this rule requires
  int main_min_priority = 0;  ///< lowest priority currently in main
  bool main_empty = true;
  bool main_full = false;
};

/// Per-reason admission totals. Since the obs refactor this is a VIEW
/// assembled from the backing metric registry on each stats() call, not
/// independent storage — the registry (gate.* counters) is the source of
/// truth, and this struct keeps the historical accessor shape.
struct GateKeeperStats {
  std::uint64_t guaranteed = 0;
  std::uint64_t unmatched = 0;
  std::uint64_t over_rate = 0;
  std::uint64_t lowest_priority = 0;
  std::uint64_t shadow_full = 0;
};

class GateKeeper {
 public:
  /// Counts admissions into `registry` (gate.* counters). When null, the
  /// Gate Keeper owns a private registry so standalone use still counts.
  GateKeeper(const HermesConfig& config, double token_rate,
             double token_burst, obs::Registry* registry = nullptr);

  /// Routing decision for an insertion arriving at `now`.
  Route route_insert(Time now, const net::Rule& rule,
                     const RouteContext& ctx);

  /// Routing decisions for a whole batch arriving at `now`, under ONE
  /// token-bucket evaluation (the transaction is one controller request,
  /// so it debits admitted-rate budget once, not per rule).
  ///
  /// The token budget (whole tokens available at `now`, clamped to the
  /// batch size) is fixed up front; per-rule checks then run in batch
  /// order against a running view of `ctx` where only rules that route
  /// kGuaranteed claim `ctx.pieces_needed` shadow slots. A rule bumped to
  /// kMainOverRate consumes neither tokens nor capacity — exactly like
  /// the per-op path — so the batch decision sequence equals calling
  /// route_insert per rule with `shadow_free` updated between calls.
  /// Under token shortage the split is deterministic: the FIRST `budget`
  /// eligible rules (batch order) stay guaranteed, the rest route
  /// kMainOverRate. Per-reason counters, the tokens gauge, and per-rule
  /// admission trace events match the per-op path.
  std::vector<Route> route_insert_batch(Time now,
                                        std::span<const net::Rule> rules,
                                        const RouteContext& ctx);

  /// Thin view over the registry counters (rebuilt per call; take a copy
  /// if you need a frozen reading).
  const GateKeeperStats& stats() const;
  const TokenBucket& bucket() const { return bucket_; }
  const obs::Registry& registry() const { return *obs_; }

 private:
  const HermesConfig* config_;
  TokenBucket bucket_;
  std::unique_ptr<obs::Registry> owned_obs_;  // set iff none was injected
  obs::Registry* obs_;
  obs::Counter guaranteed_;
  obs::Counter unmatched_;
  obs::Counter over_rate_;
  obs::Counter lowest_priority_;
  obs::Counter shadow_full_;
  obs::Gauge tokens_;  // floor of the bucket level after each decision
  obs::Histogram batch_admitted_;  // guaranteed rules per batch decision
  mutable GateKeeperStats stats_view_;
};

}  // namespace hermes::core
