#include "workloads/bgp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace hermes::workloads {
namespace {

using net::Prefix;

BgpUpdate announce(double t_s, std::string_view prefix, int peer,
                   int local_pref = 100, int as_path = 3) {
  return BgpUpdate{from_seconds(t_s), *Prefix::parse(prefix), peer, false,
                   local_pref, as_path};
}

BgpUpdate withdraw(double t_s, std::string_view prefix, int peer) {
  return BgpUpdate{from_seconds(t_s), *Prefix::parse(prefix), peer, true,
                   0, 0};
}

TEST(Rib, FirstAnnouncementInstallsFibRule) {
  Rib rib;
  auto mod = rib.apply(announce(0, "10.0.0.0/16", 1));
  ASSERT_TRUE(mod.has_value());
  EXPECT_EQ(mod->type, net::FlowModType::kInsert);
  EXPECT_EQ(mod->rule.match.to_string(), "10.0.0.0/16");
  EXPECT_EQ(mod->rule.action.port, 1);
  EXPECT_EQ(mod->rule.priority, 16);  // LPM encoding
}

TEST(Rib, WorseRouteDoesNotPercolate) {
  Rib rib;
  rib.apply(announce(0, "10.0.0.0/16", 1, 200, 2));
  // Lower local-pref: RIB grows but FIB unchanged.
  auto mod = rib.apply(announce(1, "10.0.0.0/16", 2, 100, 2));
  EXPECT_FALSE(mod.has_value());
  EXPECT_EQ(rib.updates_seen(), 2u);
  EXPECT_EQ(rib.fib_changes(), 1u);
}

TEST(Rib, BetterRouteModifiesNextHop) {
  Rib rib;
  rib.apply(announce(0, "10.0.0.0/16", 1, 100, 3));
  auto mod = rib.apply(announce(1, "10.0.0.0/16", 2, 200, 3));
  ASSERT_TRUE(mod.has_value());
  EXPECT_EQ(mod->type, net::FlowModType::kModify);
  EXPECT_EQ(mod->rule.action.port, 2);
}

TEST(Rib, TieBreaksByAsPathThenPeer) {
  Rib rib;
  rib.apply(announce(0, "10.0.0.0/16", 3, 100, 4));
  auto shorter = rib.apply(announce(1, "10.0.0.0/16", 5, 100, 2));
  ASSERT_TRUE(shorter.has_value());
  EXPECT_EQ(shorter->rule.action.port, 5);  // shorter AS path wins
  auto tie = rib.apply(announce(2, "10.0.0.0/16", 1, 100, 2));
  ASSERT_TRUE(tie.has_value());
  EXPECT_EQ(tie->rule.action.port, 1);  // equal: lowest peer id wins
}

TEST(Rib, WithdrawOfBestFailsOver) {
  Rib rib;
  rib.apply(announce(0, "10.0.0.0/16", 1, 200, 3));
  rib.apply(announce(1, "10.0.0.0/16", 2, 100, 3));
  auto mod = rib.apply(withdraw(2, "10.0.0.0/16", 1));
  ASSERT_TRUE(mod.has_value());
  EXPECT_EQ(mod->type, net::FlowModType::kModify);
  EXPECT_EQ(mod->rule.action.port, 2);
}

TEST(Rib, WithdrawOfBackupIsInvisible) {
  Rib rib;
  rib.apply(announce(0, "10.0.0.0/16", 1, 200, 3));
  rib.apply(announce(1, "10.0.0.0/16", 2, 100, 3));
  EXPECT_FALSE(rib.apply(withdraw(2, "10.0.0.0/16", 2)).has_value());
}

TEST(Rib, LastWithdrawDeletesFibRule) {
  Rib rib;
  rib.apply(announce(0, "10.0.0.0/16", 1));
  auto mod = rib.apply(withdraw(1, "10.0.0.0/16", 1));
  ASSERT_TRUE(mod.has_value());
  EXPECT_EQ(mod->type, net::FlowModType::kDelete);
  EXPECT_EQ(rib.fib_size(), 0u);
}

TEST(Rib, WithdrawOfUnknownIsNoop) {
  Rib rib;
  EXPECT_FALSE(rib.apply(withdraw(0, "10.0.0.0/16", 1)).has_value());
}

TEST(Rib, ReAnnouncementSamePathIsRibOnly) {
  Rib rib;
  rib.apply(announce(0, "10.0.0.0/16", 1, 100, 3));
  EXPECT_FALSE(rib.apply(announce(1, "10.0.0.0/16", 1, 100, 3)).has_value());
}

TEST(Rib, StableRuleIdPerPrefix) {
  Rib rib;
  auto first = rib.apply(announce(0, "10.0.0.0/16", 1));
  auto gone = rib.apply(withdraw(1, "10.0.0.0/16", 1));
  auto back = rib.apply(announce(2, "10.0.0.0/16", 2));
  ASSERT_TRUE(first && gone && back);
  EXPECT_EQ(first->rule.id, gone->rule.id);
  EXPECT_EQ(first->rule.id, back->rule.id);
}

TEST(BgpFeed, DeterministicAndOrdered) {
  BgpFeedConfig config;
  config.duration_s = 5;
  auto a = bgp_feed(config);
  auto b = bgp_feed(config);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].prefix, b[i].prefix);
    if (i > 0) EXPECT_GE(a[i].time, a[i - 1].time);
  }
}

TEST(BgpFeed, HasCalmPeriodsAndTailBursts) {
  // Section 2.3: "generally low update rates except at the tail where
  // updates occur with high frequency (over 1000 updates per second)".
  BgpFeedConfig config;
  config.duration_s = 60;
  config.seed = 7;
  auto feed = bgp_feed(config);
  ASSERT_GT(feed.size(), 100u);
  // Bucket into 100ms windows and look at the rate distribution.
  std::vector<int> buckets(601, 0);
  for (const BgpUpdate& u : feed) {
    auto idx = static_cast<std::size_t>(to_seconds(u.time) * 10);
    if (idx < buckets.size()) ++buckets[idx];
  }
  std::sort(buckets.begin(), buckets.end());
  double median_rate = buckets[buckets.size() / 2] * 10.0;
  double p99_rate = buckets[buckets.size() * 99 / 100] * 10.0;
  EXPECT_LT(median_rate, 200.0);
  EXPECT_GT(p99_rate, 1000.0);
}

TEST(BgpFeed, PresetsDiffer) {
  auto eq = equinix_chicago();
  auto nw = nwax_portland();
  EXPECT_GT(eq.prefix_count, nw.prefix_count);
  EXPECT_GT(eq.burst_rate, nw.burst_rate);
  auto rv = route_views_oregon();
  auto tx = telxatl_atlanta();
  EXPECT_NE(rv.seed, tx.seed);
}

TEST(FibTrace, OnlyFibChangesSurvive) {
  BgpFeedConfig config;
  config.duration_s = 20;
  config.seed = 3;
  auto feed = bgp_feed(config);
  Rib rib;
  for (const BgpUpdate& u : feed) rib.apply(u);
  auto trace = fib_trace(feed);
  EXPECT_EQ(trace.size(), rib.fib_changes());
  // Heavy churn on hot prefixes means many RIB updates never reach the
  // FIB: percolation strictly below 1.
  EXPECT_LT(rib.fib_percolation_rate(), 0.95);
  EXPECT_GT(rib.fib_percolation_rate(), 0.05);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].time, trace[i - 1].time);
}

}  // namespace
}  // namespace hermes::workloads
