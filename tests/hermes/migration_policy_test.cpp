// The MigrationPolicy seam must be a pure refactor of the legacy
// trigger: ThresholdMigrationPolicy's decisions reproduce
// HermesAgent::migration_due() bit-for-bit on live agent state, a
// default-configured agent behaves identically to one with an explicit
// Threshold policy_instance, and the new actions (migrate-small,
// expand-partition) obey their documented bounds.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "hermes/hermes_agent.h"
#include "hermes/migration_policy.h"
#include "tcam/switch_model.h"

namespace hermes::core {

// White-box seam (friend of HermesAgent) for the policy plumbing: the
// per-epoch PolicyState snapshot, the legacy trigger, and direct action
// application are all private by design.
struct AgentTestPeer {
  static PolicyState policy_state(const HermesAgent& agent, Time now) {
    return agent.policy_state(now);
  }
  static bool migration_due(const HermesAgent& agent) {
    return agent.migration_due();
  }
  static void apply(HermesAgent& agent, MigrationAction action, Time now) {
    agent.apply_policy_action(action, now);
  }
  static int expand_step(const HermesAgent& agent) {
    return agent.expand_step_;
  }
};

namespace {

using net::Prefix;
using net::Rule;

// splitmix64 finalizer: deterministic stream for the property drive.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rule make_rule(net::RuleId id, int priority, std::uint32_t addr,
               int length) {
  return Rule{id, priority, Prefix(net::Ipv4Address(addr), length),
              net::forward_to(static_cast<int>(id % 16))};
}

HermesConfig test_config() {
  HermesConfig config;
  config.shadow_capacity = 16;
  config.epoch = from_millis(10);
  config.token_rate = 1e9;
  config.token_burst = 1e9;
  return config;
}

std::shared_ptr<ThresholdMigrationPolicy> threshold_of(
    const HermesConfig& config) {
  return std::make_shared<ThresholdMigrationPolicy>(
      config.simple_threshold, config.migration_watermark);
}

// Drives `agent` with a deterministic bursty insert stream; calls
// `probe` just before each tick.
template <typename Probe>
void drive(HermesAgent& agent, std::uint64_t seed, int events,
           Probe&& probe) {
  Time now = 0;
  net::RuleId id = 1;
  for (int i = 0; i < events; ++i) {
    std::uint64_t h = mix(seed ^ mix(static_cast<std::uint64_t>(i)));
    bool burst = (h & 7) == 0;
    int count = burst ? static_cast<int>(1 + (h >> 8) % 20) : 1;
    for (int k = 0; k < count; ++k) {
      std::uint32_t addr = static_cast<std::uint32_t>(
          mix(h + static_cast<std::uint64_t>(k)) & 0xffffff00u);
      agent.insert(now, make_rule(id, static_cast<int>(1 + (h >> 3) % 30),
                                  (10u << 24) | (addr >> 8), 32));
      ++id;
      now += from_micros(200);
    }
    now += from_micros(500 + (h >> 16) % 5000);
    probe(now);
    agent.tick(now);
  }
}

// Property: on every pre-tick agent state, the refactored
// ThresholdMigrationPolicy decides exactly what migration_due() says —
// kMigrateLarge when due, kHold otherwise.
TEST(ThresholdPolicy, MatchesLegacyTriggerOnLiveState) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    HermesConfig config = test_config();
    HermesAgent agent(tcam::pica8_p3290(), 1024, config);
    auto policy = threshold_of(config);
    int checked = 0;
    int due = 0;
    drive(agent, seed, 120, [&](Time now) {
      bool legacy = AgentTestPeer::migration_due(agent);
      MigrationAction action =
          policy->decide(AgentTestPeer::policy_state(agent, now));
      ASSERT_EQ(action, legacy ? MigrationAction::kMigrateLarge
                               : MigrationAction::kHold)
          << "seed " << seed << " at t=" << now;
      ++checked;
      due += legacy ? 1 : 0;
    });
    // The stream must exercise both branches for the property to mean
    // anything.
    EXPECT_GT(due, 0) << "seed " << seed;
    EXPECT_LT(due, checked) << "seed " << seed;
  }
}

// Hermes-SIMPLE configs take the same seam; the plain occupancy
// threshold must survive the refactor too.
TEST(ThresholdPolicy, MatchesSimpleThreshold) {
  HermesConfig config = test_config();
  config.simple_threshold = 0.5;
  HermesAgent agent(tcam::pica8_p3290(), 1024, config);
  auto policy = threshold_of(config);
  drive(agent, 3, 80, [&](Time now) {
    ASSERT_EQ(policy->decide(AgentTestPeer::policy_state(agent, now)),
              AgentTestPeer::migration_due(agent)
                  ? MigrationAction::kMigrateLarge
                  : MigrationAction::kHold);
  });
}

// A default-configured agent (no policy_instance) and one explicitly
// given the Threshold policy must produce identical externally visible
// behavior over a whole run: the refactor is behavior-preserving.
TEST(ThresholdPolicy, ExplicitInstanceIsBitIdenticalToDefault) {
  HermesConfig plain = test_config();
  HermesConfig wired = test_config();
  wired.policy_instance = threshold_of(plain);

  HermesAgent a(tcam::pica8_p3290(), 1024, plain);
  HermesAgent b(tcam::pica8_p3290(), 1024, wired);
  drive(a, 11, 100, [](Time) {});
  drive(b, 11, 100, [](Time) {});

  const AgentStats& sa = a.stats();
  const AgentStats& sb = b.stats();
  EXPECT_EQ(sa.inserts, sb.inserts);
  EXPECT_EQ(sa.guaranteed_inserts, sb.guaranteed_inserts);
  EXPECT_EQ(sa.main_inserts, sb.main_inserts);
  EXPECT_EQ(sa.migrations, sb.migrations);
  EXPECT_EQ(sa.rules_migrated, sb.rules_migrated);
  EXPECT_EQ(sa.pieces_migrated, sb.pieces_migrated);
  EXPECT_EQ(sa.violations, sb.violations);
  EXPECT_EQ(a.shadow_occupancy(), b.shadow_occupancy());
  EXPECT_EQ(a.shadow_capacity(), b.shadow_capacity());
}

// The action tests need every insert on the shadow path: disable the
// lowest-priority append (which would route the first rule of an
// ascending-priority stream straight to main) and give each rule a
// distinct /32 so same-match redundancy cannot swallow occupancy.
HermesConfig action_config() {
  HermesConfig config = test_config();
  config.lowest_priority_optimization = false;
  return config;
}

// Migrate-small drains only the top half of the shadow (by priority),
// leaving the rest resident.
TEST(PolicyActions, MigrateSmallDrainsHalf) {
  HermesConfig config = action_config();
  HermesAgent agent(tcam::pica8_p3290(), 1024, config);
  for (net::RuleId id = 1; id <= 8; ++id)
    agent.insert(0, make_rule(id, static_cast<int>(id),
                              (10u << 24) + static_cast<std::uint32_t>(id),
                              32));
  ASSERT_EQ(agent.shadow_occupancy(), 8);

  AgentTestPeer::apply(agent, MigrationAction::kMigrateSmall,
                       from_millis(1));
  EXPECT_EQ(agent.shadow_occupancy(), 4);

  AgentTestPeer::apply(agent, MigrationAction::kMigrateLarge,
                       from_millis(2));
  EXPECT_EQ(agent.shadow_occupancy(), 0);
  EXPECT_EQ(agent.stats().rules_migrated, 8u);
}

// Expand-partition is a bounded ratchet: each application grows the
// shadow slice by one step until twice the initial carve, then the
// action degrades to a plain full drain. It also always drains.
TEST(PolicyActions, ExpandPartitionIsBoundedAndDrains) {
  HermesConfig config = action_config();
  HermesAgent agent(tcam::pica8_p3290(), 1024, config);
  const int initial = agent.shadow_capacity();
  const int step = AgentTestPeer::expand_step(agent);
  ASSERT_GT(step, 0);

  agent.insert(0, make_rule(1, 5, (10u << 24) + 1, 32));
  ASSERT_EQ(agent.shadow_occupancy(), 1);

  Time now = from_millis(1);
  AgentTestPeer::apply(agent, MigrationAction::kExpandPartition, now);
  EXPECT_EQ(agent.shadow_capacity(), initial + step);
  EXPECT_EQ(agent.shadow_occupancy(), 0);  // composite: it drained too

  for (int i = 0; i < 64; ++i) {
    now += from_millis(1);
    AgentTestPeer::apply(agent, MigrationAction::kExpandPartition, now);
  }
  EXPECT_LE(agent.shadow_capacity(), 2 * initial);
  EXPECT_EQ(agent.shadow_capacity(), 2 * initial);
}

// Hold is a true no-op on the shadow table.
TEST(PolicyActions, HoldLeavesShadowAlone) {
  HermesConfig config = action_config();
  HermesAgent agent(tcam::pica8_p3290(), 1024, config);
  for (net::RuleId id = 1; id <= 5; ++id)
    agent.insert(0, make_rule(id, static_cast<int>(id),
                              (10u << 24) + static_cast<std::uint32_t>(id),
                              32));
  AgentTestPeer::apply(agent, MigrationAction::kHold, from_millis(1));
  EXPECT_EQ(agent.shadow_occupancy(), 5);
  EXPECT_EQ(agent.stats().migrations, 0u);
}

// The factory resolves the default name and honors policy_instance.
TEST(PolicyFactory, ResolvesThresholdAndInstanceWins) {
  HermesConfig config = test_config();
  auto by_name = make_migration_policy(config);
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(by_name->name(), "Threshold");

  auto instance = threshold_of(config);
  config.policy_instance = instance;
  EXPECT_EQ(make_migration_policy(config), instance);

  config.policy_instance = nullptr;
  config.policy = "NoSuchPolicy";
  EXPECT_EQ(make_migration_policy(config), nullptr);
}

}  // namespace
}  // namespace hermes::core
