// Figure 9: CDF of Flow Completion Time — Facebook (all jobs), Facebook
// (short jobs only), and Geant — for the three plain switches and Hermes.
//
// Paper shape to reproduce: Hermes improves the median FCT by up to 48% /
// 80% / 43% over the Dell / Pica8 / HP on the Facebook trace, and the
// benefit concentrates in short flows (95th-percentile improvement ~80%,
// close to the raw RIT-level gains) because long flows amortize the
// control-plane delay over their transfer time.
#include <cstdio>
#include <string>

#include "bench/sim_common.h"

namespace {

using namespace hermes;

struct FctSets {
  std::vector<double> all;
  std::vector<double> short_jobs;
};

FctSets fcts(const bench::SimOutcome& outcome) {
  FctSets out;
  // job_id -> is_short lookup.
  std::vector<char> short_job;
  for (const auto& j : outcome.jobs) {
    if (static_cast<std::size_t>(j.job_id) >= short_job.size())
      short_job.resize(static_cast<std::size_t>(j.job_id) + 1, 0);
    short_job[static_cast<std::size_t>(j.job_id)] = j.is_short ? 1 : 0;
  }
  for (const auto& f : outcome.flows) {
    out.all.push_back(f.fct_s());
    if (f.job_id >= 0 && short_job[static_cast<std::size_t>(f.job_id)])
      out.short_jobs.push_back(f.fct_s());
  }
  return out;
}

}  // namespace

int main() {
  auto& rep = bench::report::open("fig09_fct", "s");
  bench::header("Figure 9: Flow Completion Time CDFs  [paper: Fig 9]");

  struct Case {
    const char* label;
    const char* kind;
    const tcam::SwitchModel* model;
  };
  const Case cases[] = {
      {"Pica8 P-3290", "plain", &tcam::pica8_p3290()},
      {"Dell 8132F", "plain", &tcam::dell_8132f()},
      {"HP 5406zl", "plain", &tcam::hp_5406zl()},
      {"Hermes", "hermes", &tcam::pica8_p3290()},
  };

  std::printf("\n--- Facebook (fat-tree) ---\n");
  auto facebook = bench::facebook_scenario();
  std::vector<double> medians_all(4), medians_short(4);
  for (int i = 0; i < 4; ++i) {
    auto outcome = bench::run_scenario(facebook, cases[i].kind,
                                       *cases[i].model);
    FctSets sets = fcts(outcome);
    medians_all[static_cast<std::size_t>(i)] =
        sim::percentile(sets.all, 0.5);
    medians_short[static_cast<std::size_t>(i)] =
        sim::percentile(sets.short_jobs, 0.95);
    std::printf("\n%s\n", cases[i].label);
    bench::print_summary_line("FCT all jobs", sets.all, "s");
    bench::print_cdf("FCT CDF, all jobs (s)", sets.all, 10);
    bench::print_summary_line("FCT short jobs", sets.short_jobs, "s");
    bench::print_cdf("FCT CDF, short jobs (s)", sets.short_jobs, 10);
  }
  std::printf("\n  Hermes median-FCT improvement: vs Pica8 %.0f%%, vs Dell "
              "%.0f%%, vs HP %.0f%%  [paper: 80%%, 48%%, 43%%]\n",
              100 * (1 - medians_all[3] / medians_all[0]),
              100 * (1 - medians_all[3] / medians_all[1]),
              100 * (1 - medians_all[3] / medians_all[2]));
  std::printf("  Hermes p95 short-flow improvement vs Pica8: %.0f%%  "
              "[paper: ~80%%]\n",
              100 * (1 - medians_short[3] / medians_short[0]));
  rep.derived("median_fct_improvement_pct_vs_pica8",
              100 * (1 - medians_all[3] / medians_all[0]));
  rep.derived("median_fct_improvement_pct_vs_dell",
              100 * (1 - medians_all[3] / medians_all[1]));
  rep.derived("median_fct_improvement_pct_vs_hp",
              100 * (1 - medians_all[3] / medians_all[2]));
  rep.derived("p95_short_fct_improvement_pct_vs_pica8",
              100 * (1 - medians_short[3] / medians_short[0]));

  std::printf("\n--- Geant (ISP) ---\n");
  auto geant = bench::geant_scenario();
  for (const Case& c : cases) {
    auto outcome = bench::run_scenario(geant, c.kind, *c.model);
    FctSets sets = fcts(outcome);
    std::printf("\n%s\n", c.label);
    bench::print_summary_line("FCT", sets.all, "s");
    bench::print_cdf("FCT CDF (s)", sets.all, 10);
  }
  rep.write();
  return 0;
}
