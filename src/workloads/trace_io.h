// Text (de)serialization for control-plane traces.
//
// Lets users capture a flow-mod stream once (e.g. the busiest-switch
// trace of a simulation run) and replay it offline against any backend —
// the workflow the replay benches use internally. The format is one
// event per line:
//
//   <time_ns> <verb> <rule_id> <priority> <prefix> <action>
//
// where verb is insert|delete|modify and action is fwd:<port>, drop,
// controller or goto. Lines starting with '#' and blank lines are
// ignored.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "workloads/trace.h"

namespace hermes::workloads {

/// Serializes one event as a single line (no trailing newline).
std::string format_event(const RuleEvent& event);

/// Parses one line; nullopt on malformed input.
std::optional<RuleEvent> parse_event(std::string_view line);

/// Writes the whole trace (with a commented header).
void write_trace(std::ostream& out, const RuleTrace& trace);

/// Reads a trace until EOF. Returns nullopt if any non-comment line is
/// malformed (the error message receives the offending line number).
std::optional<RuleTrace> read_trace(std::istream& in,
                                    std::string* error = nullptr);

/// File convenience wrappers. save returns false on I/O failure.
bool save_trace(const std::string& path, const RuleTrace& trace);
std::optional<RuleTrace> load_trace(const std::string& path,
                                    std::string* error = nullptr);

}  // namespace hermes::workloads
