// The incremental atomic-update algorithm of Section 5.2.
//
// When migration's optimizer rewrites rules that must REPLACE existing
// main-table rules, deleting the old rules before inserting the new one
// opens a window where packets match neither ("the add and delete
// operations are not atomic"). Stalling the pipeline would fix it at the
// cost of data-plane jitter, so Hermes instead:
//
//   (i)   collects the main-table rules O that the optimized rule r
//         overlaps (the rules r replaces),
//   (ii)  raises r's priority to one above every rule in O, and
//   (iii) inserts r, then deletes each o in O — at every instant a packet
//         matches either r (which now outranks O) or a rule of O.
//
// Safety precondition checked here: no rule that is NOT being replaced
// may sit in the priority interval the bump crosses while overlapping r,
// otherwise the bump would reorder r against an unrelated rule. When
// that precondition fails the function reports it and performs the
// non-atomic fallback (delete-then-insert) only if `allow_fallback`.
#pragma once

#include <span>

#include "net/rule.h"
#include "net/time.h"
#include "tcam/asic.h"

namespace hermes::core {

struct IncrementalReplaceResult {
  bool ok = false;        ///< the replacement happened
  bool atomic = false;    ///< via the priority-bump path (no gap)
  int bumped_priority = 0;  ///< priority r ended up with
  Time completion = 0;
};

/// Replaces the rules `replaced` (ids resident in `asic` slice
/// `slice_idx`) with `optimized`, atomically when safe. Control-channel
/// time is charged via Asic::submit starting at `now`.
IncrementalReplaceResult incremental_replace(
    tcam::Asic& asic, int slice_idx, Time now, net::Rule optimized,
    std::span<const net::RuleId> replaced, bool allow_fallback = true);

}  // namespace hermes::core
