#include "net/routing.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace hermes::net {
namespace {

// A small diamond: a - b - d and a - c - d, plus a slow direct a - d.
Topology diamond() {
  Topology t;
  NodeId a = t.add_node(NodeKind::kSwitch, "a");
  NodeId b = t.add_node(NodeKind::kSwitch, "b");
  NodeId c = t.add_node(NodeKind::kSwitch, "c");
  NodeId d = t.add_node(NodeKind::kSwitch, "d");
  t.add_link(a, b, 1e9, 1e-3);
  t.add_link(b, d, 1e9, 1e-3);
  t.add_link(a, c, 1e9, 1e-3);
  t.add_link(c, d, 1e9, 1e-3);
  t.add_link(a, d, 1e9, 10e-3);  // direct but slow
  return t;
}

TEST(ShortestPath, PrefersLowDelay) {
  Topology t = diamond();
  auto p = shortest_path(t, 0, 3, propagation_delay());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 3u);  // two-hop path beats the 10ms direct link
}

TEST(ShortestPath, HopCountPrefersDirect) {
  Topology t = diamond();
  auto p = shortest_path(t, 0, 3, hop_count());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{0, 3}));
}

TEST(ShortestPath, SelfPath) {
  Topology t = diamond();
  auto p = shortest_path(t, 2, 2, hop_count());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, Path{2});
}

TEST(ShortestPath, UnreachableReturnsNullopt) {
  Topology t;
  t.add_node(NodeKind::kSwitch, "a");
  t.add_node(NodeKind::kSwitch, "b");
  EXPECT_FALSE(shortest_path(t, 0, 1, hop_count()).has_value());
}

TEST(PathCost, SumsWeights) {
  Topology t = diamond();
  EXPECT_DOUBLE_EQ(path_cost(t, Path{0, 1, 3}, propagation_delay()), 2e-3);
  EXPECT_DOUBLE_EQ(path_cost(t, Path{0, 3}, hop_count()), 1.0);
  EXPECT_TRUE(std::isinf(path_cost(t, Path{0, 2, 1}, hop_count())));
  EXPECT_TRUE(std::isinf(path_cost(t, Path{}, hop_count())));
}

TEST(EcmpPaths, FindsBothDiamondArms) {
  Topology t = diamond();
  auto paths = ecmp_paths(t, 0, 3, propagation_delay(), 8);
  ASSERT_EQ(paths.size(), 2u);
  std::set<Path> got(paths.begin(), paths.end());
  EXPECT_TRUE(got.count(Path{0, 1, 3}));
  EXPECT_TRUE(got.count(Path{0, 2, 3}));
}

TEST(EcmpPaths, RespectsMaxPaths) {
  Topology t = diamond();
  auto paths = ecmp_paths(t, 0, 3, propagation_delay(), 1);
  EXPECT_EQ(paths.size(), 1u);
}

TEST(EcmpPaths, FatTreeInterPodCount) {
  // Between hosts in different pods of a k=4 fat-tree there are
  // (k/2)^2 = 4 equal-cost shortest paths.
  Topology t = fat_tree(4);
  auto hosts = t.hosts();
  NodeId src = hosts.front();
  NodeId dst = hosts.back();
  auto paths = ecmp_paths(t, src, dst, hop_count(), 32);
  EXPECT_EQ(paths.size(), 4u);
  for (const Path& p : paths) {
    EXPECT_EQ(p.size(), 7u);  // host-edge-agg-core-agg-edge-host
    EXPECT_EQ(p.front(), src);
    EXPECT_EQ(p.back(), dst);
  }
}

TEST(EcmpPaths, SameEdgeSwitchSinglePath) {
  Topology t = fat_tree(4);
  auto hosts = t.hosts();
  // hosts under the same edge switch are consecutive in construction order
  auto paths = ecmp_paths(t, hosts[0], hosts[1], hop_count(), 32);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 3u);
}

TEST(KShortestPaths, OrderedAndLoopless) {
  Topology t = diamond();
  auto paths = k_shortest_paths(t, 0, 3, propagation_delay(), 3);
  ASSERT_EQ(paths.size(), 3u);
  double prev = 0;
  for (const Path& p : paths) {
    double c = path_cost(t, p, propagation_delay());
    EXPECT_GE(c, prev);
    prev = c;
    std::set<NodeId> uniq(p.begin(), p.end());
    EXPECT_EQ(uniq.size(), p.size()) << "loop in path";
  }
  EXPECT_EQ(paths[2], (Path{0, 3}));  // slow direct link comes last
}

TEST(KShortestPaths, StopsWhenExhausted) {
  Topology t;
  NodeId a = t.add_node(NodeKind::kSwitch, "a");
  NodeId b = t.add_node(NodeKind::kSwitch, "b");
  t.add_link(a, b, 1e9, 1e-3);
  auto paths = k_shortest_paths(t, a, b, hop_count(), 5);
  EXPECT_EQ(paths.size(), 1u);
}

TEST(PathDatabase, MemoizesAndFills) {
  Topology t = diamond();
  PathDatabase db(t, 3, propagation_delay());
  const auto& p1 = db.paths(0, 3);
  EXPECT_EQ(p1.size(), 3u);  // 2 ECMP + 1 Yen (direct link)
  const auto& p2 = db.paths(0, 3);
  EXPECT_EQ(&p1, &p2);  // memoized: same storage
}

TEST(PathDatabase, UnreachablePairYieldsEmpty) {
  Topology t;
  t.add_node(NodeKind::kSwitch, "a");
  t.add_node(NodeKind::kSwitch, "b");
  PathDatabase db(t, 2, hop_count());
  EXPECT_TRUE(db.paths(0, 1).empty());
}

}  // namespace
}  // namespace hermes::net
