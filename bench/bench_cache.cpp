// Rule-cache hierarchy benchmark: the millions-of-flows regime the FDRC
// refactor targets. Two phases:
//
//   * policy  — cache::CacheHierarchy in kCache mode under the Zipf
//     multi-tenant workload (src/workloads/zipf.h), one run per
//     (eviction policy, TCAM size). The logical table is far larger than
//     the TCAM; the question is which policy keeps the popular head
//     TCAM-resident. Reported per run: TCAM hit ratio over the measured
//     window, modeled mean data-plane latency per packet, promotion /
//     demotion churn, real ns per classify, and the dependency-violation
//     counter (verify_lookups is ON — every lookup is differentially
//     checked against the monolithic software table, so a nonzero count
//     is a correctness bug and the bench exits 1).
//
//   * backend — admission behavior at overflow: HermesAgent with the
//     software-spill tier vs plain HermesAgent (rejects at capacity) vs
//     ShadowSwitchBackend, all offered the same oversubscribed rule set.
//     Reported: accepted fraction and data-plane reachability.
//
// Derived metrics (CI-gated, machine-independent — all are ratios of
// modeled or counted quantities):
//   * fdrc_vs_lru_hit_improvement / fdrc_vs_lfu_hit_improvement — FDRC's
//     best-over-sizes hit-ratio advantage; the acceptance bar is > 1.
//   * miss_path_latency_ratio — FDRC mean modeled latency per packet over
//     the pure-software slow-path cost (lower is better; 1.0 would mean
//     the cache never hits).
//   * dependency_violation_free_rate — 1.0 iff every run of every policy
//     kept cache.dependency_violations at zero.
//   * spill_admission_rate — fraction of oversubscribed offers the
//     spill-mode agent accepted (the whole point of the spill tier: 1.0).
//
// Usage: bench_cache [--smoke] [output.json]
//   (--smoke shrinks flows/sizes/probes to CI scale; default output
//    BENCH_cache.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "cache/cache_hierarchy.h"
#include "baselines/shadow_switch.h"
#include "hermes/hermes_agent.h"
#include "report.h"
#include "tcam/switch_model.h"
#include "workloads/zipf.h"

namespace hermes::bench {
namespace {

// Process CPU time, not wall clock (see bench_hotpath.cpp).
struct Clock {
  struct time_point {
    std::int64_t ns;
  };
  static time_point now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return {static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec};
#else
    return {std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count()};
#endif
  }
};

struct PolicyRun {
  std::string policy;
  int cache_size = 0;
  double hit_ratio = 0.0;
  double mean_latency_ns = 0.0;
  std::uint64_t violations = 0;
};

/// One (policy, size) run: install the full Zipf rule set, warm the
/// cache, then measure hit ratio / latency / churn over a fixed window.
PolicyRun run_policy(const workloads::ZipfConfig& wc,
                     const std::vector<net::Rule>& rules,
                     cache::PolicyKind policy, int cache_size, int warm_probes,
                     int probes) {
  cache::CacheConfig config;
  config.mode = cache::Mode::kCache;
  config.policy = policy;
  config.verify_lookups = true;
  cache::CacheHierarchy h(tcam::pica8_p3290(), cache_size, config);

  Time now = 0;
  for (const net::Rule& r : rules) {
    now += from_micros(1);
    h.handle(now, {net::FlowModType::kInsert, r});
  }

  workloads::ZipfTraffic traffic(wc);
  auto drive = [&](int count) {
    for (int i = 0; i < count; ++i) {
      now += from_micros(1);
      h.classify(now, traffic.next());
      if (i % 256 == 0) h.tick(now);
    }
  };
  drive(warm_probes);

  const std::uint64_t hits0 = h.hits(), misses0 = h.misses();
  const std::uint64_t promo0 = h.promotions(), demo0 = h.demotions();
  // Modeled latency is accumulated by hand (classify returns it); the
  // real-time clock around the same loop gives actual ns per classify.
  std::int64_t modeled = 0;
  auto start = Clock::now();
  for (int i = 0; i < probes; ++i) {
    now += from_micros(1);
    auto res = h.classify(now, traffic.next());
    modeled += res.latency;
    if (i % 256 == 0) h.tick(now);
  }
  double real_ns = static_cast<double>(Clock::now().ns - start.ns) /
                   static_cast<double>(probes);

  const std::uint64_t window_hits = h.hits() - hits0;
  const std::uint64_t window_total = window_hits + (h.misses() - misses0);
  PolicyRun run;
  run.policy = std::string(cache::policy_name(policy));
  run.cache_size = cache_size;
  run.hit_ratio = window_total == 0
                      ? 0.0
                      : static_cast<double>(window_hits) /
                            static_cast<double>(window_total);
  run.mean_latency_ns =
      static_cast<double>(modeled) / static_cast<double>(probes);
  run.violations = h.dependency_violations();
  double churn = static_cast<double>((h.promotions() - promo0) +
                                     (h.demotions() - demo0)) *
                 1000.0 / static_cast<double>(probes);

  std::printf(
      "  %-4s size=%5d  hit=%.4f  modeled=%8.1f ns  churn=%6.2f/kpkt  "
      "real=%7.1f ns  violations=%llu\n",
      run.policy.c_str(), cache_size, run.hit_ratio, run.mean_latency_ns,
      churn, real_ns, static_cast<unsigned long long>(run.violations));
  if (report::Reporter* rep = report::current()) {
    rep->row()
        .label("phase", "policy")
        .label("policy", run.policy)
        .value("cache_size", cache_size)
        .value("flows", wc.flows)
        .value("hit_ratio", run.hit_ratio)
        .value("modeled_latency_ns", run.mean_latency_ns)
        .value("churn_per_kpkt", churn)
        .value("dependency_violations",
               static_cast<double>(run.violations));
  }
  return run;
}

struct BackendRun {
  std::string backend;
  double accepted = 0.0;
  double reachable = 0.0;
};

/// Offer `offered` disjoint flow rules to a backend with `capacity` TCAM
/// entries and report what fraction got accepted and what fraction still
/// answers on the data plane.
template <typename InsertFn, typename LookupFn>
BackendRun run_backend(const char* name, int offered, InsertFn&& insert,
                       LookupFn&& lookup) {
  int accepted = 0, reachable = 0;
  Time now = 0;
  for (int i = 1; i <= offered; ++i) {
    now += from_micros(100);
    net::Rule r{static_cast<net::RuleId>(i), 1,
                net::Prefix(net::Ipv4Address(0x0A000000u |
                                             static_cast<std::uint32_t>(i)),
                            32),
                net::forward_to(i % 16)};
    if (insert(now, r)) ++accepted;
  }
  for (int i = 1; i <= offered; ++i) {
    auto hit = lookup(
        net::Ipv4Address(0x0A000000u | static_cast<std::uint32_t>(i)));
    if (hit.has_value() && hit->id == static_cast<net::RuleId>(i))
      ++reachable;
  }
  BackendRun run;
  run.backend = name;
  run.accepted = static_cast<double>(accepted) / offered;
  run.reachable = static_cast<double>(reachable) / offered;
  std::printf("  %-14s offered=%5d  accepted=%.3f  reachable=%.3f\n", name,
              offered, run.accepted, run.reachable);
  if (report::Reporter* rep = report::current()) {
    rep->row()
        .label("phase", "backend")
        .label("backend", name)
        .value("offered", offered)
        .value("accepted_fraction", run.accepted)
        .value("reachable_fraction", run.reachable);
  }
  return run;
}

}  // namespace
}  // namespace hermes::bench

int main(int argc, char** argv) {
  using namespace hermes::bench;
  bool smoke = false;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out = argv[i];
    }
  }
  auto& rep = report::open("cache", "hit_ratio");
  std::printf("rule-cache hierarchy benchmark%s\n", smoke ? " [smoke]" : "");

  hermes::workloads::ZipfConfig wc;
  wc.flows = smoke ? 150'000 : 1'000'000;
  wc.seed = 11;
  const std::vector<int> sizes =
      smoke ? std::vector<int>{512, 2048} : std::vector<int>{1024, 4096};
  const int warm_probes = smoke ? 60'000 : 200'000;
  const int probes = smoke ? 120'000 : 400'000;
  // Popularity drift: the hot head migrates a few times per run (real
  // flow popularity is not static). This is the regime the policies are
  // judged in — recency-only LRU churns on the Zipf tail, un-aged LFU
  // fossilizes on the pre-drift head, FDRC's aged counters track it.
  wc.rotate_period = static_cast<std::uint64_t>(warm_probes + probes) / 6;
  wc.rotate_step = static_cast<std::uint64_t>(4 * sizes.back());

  std::printf("building %d-flow Zipf rule set (%d tenants, skew %.2f)...\n",
              wc.flows, wc.tenants, wc.skew);
  const std::vector<hermes::net::Rule> rules =
      hermes::workloads::make_zipf_rules(wc);

  const hermes::cache::PolicyKind kPolicies[] = {
      hermes::cache::PolicyKind::kLru, hermes::cache::PolicyKind::kLfu,
      hermes::cache::PolicyKind::kFdrc};
  std::uint64_t total_violations = 0;
  // hit ratio per policy name per size, for the derived ratios.
  double best_improvement_lru = 0.0, best_improvement_lfu = 0.0;
  double fdrc_latency_at_top = 0.0;
  for (int size : sizes) {
    std::printf("--- cache size %d, %d flows ---\n", size, wc.flows);
    double lru = 0.0, lfu = 0.0, fdrc = 0.0;
    for (hermes::cache::PolicyKind policy : kPolicies) {
      PolicyRun run = run_policy(wc, rules, policy, size, warm_probes, probes);
      total_violations += run.violations;
      if (policy == hermes::cache::PolicyKind::kLru) lru = run.hit_ratio;
      if (policy == hermes::cache::PolicyKind::kLfu) lfu = run.hit_ratio;
      if (policy == hermes::cache::PolicyKind::kFdrc) {
        fdrc = run.hit_ratio;
        fdrc_latency_at_top = run.mean_latency_ns;
      }
    }
    best_improvement_lru =
        std::max(best_improvement_lru, fdrc / std::max(lru, 1e-9));
    best_improvement_lfu =
        std::max(best_improvement_lfu, fdrc / std::max(lfu, 1e-9));
  }

  std::printf("--- backend admission at 1.5x oversubscription ---\n");
  const int capacity = smoke ? 512 : 2048;
  const int offered = capacity + capacity / 2;
  hermes::core::HermesConfig hc;
  hc.guarantee = hermes::from_millis(5);
  hc.token_rate = 1e9;
  hc.token_burst = 1e9;
  hc.software_spill = true;
  hermes::core::HermesAgent spill_agent(hermes::tcam::pica8_p3290(), capacity,
                                        hc);
  BackendRun spill = run_backend(
      "hermes_spill", offered,
      [&](hermes::Time now, const hermes::net::Rule& r) {
        auto failed = spill_agent.stats().failed_ops;
        spill_agent.insert(now, r);
        return spill_agent.stats().failed_ops == failed;
      },
      [&](hermes::net::Ipv4Address addr) { return spill_agent.lookup(addr); });

  hc.software_spill = false;
  hermes::core::HermesAgent plain_agent(hermes::tcam::pica8_p3290(), capacity,
                                        hc);
  run_backend(
      "hermes", offered,
      [&](hermes::Time now, const hermes::net::Rule& r) {
        auto failed = plain_agent.stats().failed_ops;
        plain_agent.insert(now, r);
        return plain_agent.stats().failed_ops == failed;
      },
      [&](hermes::net::Ipv4Address addr) { return plain_agent.lookup(addr); });

  hermes::baselines::ShadowSwitchBackend shadow(hermes::tcam::pica8_p3290(),
                                                capacity);
  hermes::Time shadow_now = 0;
  run_backend(
      "shadow_switch", offered,
      [&](hermes::Time now, const hermes::net::Rule& r) {
        shadow.handle(now, {hermes::net::FlowModType::kInsert, r});
        shadow_now = now;
        return true;
      },
      [&](hermes::net::Ipv4Address addr) {
        return shadow.lookup(addr);
      });
  shadow.tick(shadow_now + hermes::from_millis(40));

  const double software_ns = static_cast<double>(
      hermes::cache::CacheConfig{}.software_latency);
  rep.derived("fdrc_vs_lru_hit_improvement", best_improvement_lru);
  rep.derived("fdrc_vs_lfu_hit_improvement", best_improvement_lfu);
  rep.derived("miss_path_latency_ratio",
              fdrc_latency_at_top / std::max(software_ns, 1e-9));
  rep.derived("dependency_violation_free_rate",
              total_violations == 0 ? 1.0 : 0.0);
  rep.derived("spill_admission_rate", spill.accepted);
  std::printf(
      "\nFDRC best hit-ratio improvement: %.3fx vs LRU, %.3fx vs LFU; "
      "miss-path latency ratio %.3f; violations %llu; spill admission "
      "%.3f\n",
      best_improvement_lru, best_improvement_lfu,
      fdrc_latency_at_top / std::max(software_ns, 1e-9),
      static_cast<unsigned long long>(total_violations), spill.accepted);
  rep.write(out);

  if (total_violations != 0) {
    std::fprintf(stderr,
                 "FAIL: cache.dependency_violations = %llu (must be 0)\n",
                 static_cast<unsigned long long>(total_violations));
    return 1;
  }
  if (best_improvement_lru <= 1.0 || best_improvement_lfu <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: FDRC does not beat both LRU (%.3fx) and LFU "
                 "(%.3fx) at any cache size\n",
                 best_improvement_lru, best_improvement_lfu);
    return 1;
  }
  return 0;
}
