// Flow-level (fluid) network model with max-min fair bandwidth sharing —
// the data-plane half of the Varys simulator (Section 8.1.1).
//
// Flows are fluid: each active flow drains at the max-min fair rate its
// path permits. Whenever the flow set or any path changes, rates are
// recomputed by progressive filling; between changes every flow's
// remaining volume shrinks linearly, so the next completion time is
// exact, not approximated.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "net/time.h"
#include "net/topology.h"

namespace hermes::sim {

using FlowId = int;
inline constexpr FlowId kInvalidFlow = -1;

class FluidNetwork {
 public:
  explicit FluidNetwork(const net::Topology& topology);

  /// Registers a flow of `bytes` over the links of `path`. The caller must
  /// have advanced the network to `now` (all mutators require it).
  FlowId add_flow(double bytes, const std::vector<net::LinkId>& links,
                  Time now);

  /// Removes a flow (completion or cancellation).
  void remove_flow(FlowId id, Time now);

  /// Moves a flow onto a different set of links (TE reroute).
  void reroute_flow(FlowId id, const std::vector<net::LinkId>& links,
                    Time now);

  /// Drains all flows up to `now` at their current rates. Monotone.
  void advance_to(Time now);

  /// The earliest upcoming completion under current rates.
  struct NextCompletion {
    FlowId flow = kInvalidFlow;
    Time time = 0;
  };
  std::optional<NextCompletion> next_completion() const;

  double remaining_bytes(FlowId id) const;
  double rate_bytes_per_s(FlowId id) const;
  const std::vector<net::LinkId>& links_of(FlowId id) const;

  /// Fraction of link capacity currently in use, in [0, 1].
  double link_utilization(net::LinkId link) const;
  /// Utilization of every link in one pass (for the TE scan).
  std::vector<double> all_link_utilization() const;
  /// Active flows traversing `link`.
  std::vector<FlowId> flows_on_link(net::LinkId link) const;

  int active_flow_count() const { return static_cast<int>(flows_.size()); }

 private:
  struct FlowState {
    double remaining = 0;
    double rate = 0;  // bytes/s
    std::vector<net::LinkId> links;
  };

  void recompute_rates();

  const net::Topology* topology_;
  std::vector<double> link_capacity_;  // bytes/s per link
  std::unordered_map<FlowId, FlowState> flows_;
  FlowId next_id_ = 0;
  Time last_advance_ = 0;
};

}  // namespace hermes::sim
