// Property tests for the consistent-update coordinator (src/update/):
// ez-Segway execution must never create a blackhole or loop instant for
// the in-flight flow — across commits, aborts (add and flip failures,
// including failures AFTER a gated removal landed), and cancels — while
// the naive two-phase baseline measurably loops on out-of-order reroutes
// and strands a mixed state on partial failure.
//
// The harness is a FakeFabric: per-switch rule tables keyed by rule id,
// uniform (per-switch overridable) apply latency, and scripted failures.
// Every completed operation feeds a ConsistencyChecker mirror that is
// re-traced at each change instant.
#include "update/update_coordinator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/rule.h"
#include "net/update_plan.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "update/consistency_checker.h"

namespace hermes::update {
namespace {

constexpr Duration kLatency = 10;
constexpr Duration kSignal = 5;

/// Per-switch rule tables with scripted latency and failures. Rule ids
/// key the tables (one flow => at most one rule per switch here).
class FakeFabric {
 public:
  using Table = std::map<net::RuleId, net::Rule>;

  /// Every op on `sw` of this verb fails (rejected, table untouched).
  void fail(net::NodeId sw, net::FlowModType type) {
    fail_.insert({sw, type});
  }
  /// Ops on `sw` complete after `latency` instead of the default.
  void set_latency(net::NodeId sw, Duration latency) {
    latency_[sw] = latency;
  }

  UpdateCoordinator::BatchDispatch batch_dispatch() {
    return [this](Time now, net::NodeId sw, net::FlowModBatch& batch) {
      for (std::size_t i = 0; i < batch.size(); ++i)
        batch.complete(i, now + latency_of(sw), apply(sw, batch.mod(i)));
    };
  }
  UpdateCoordinator::ModDispatch mod_dispatch() {
    return [this](Time, net::NodeId sw, const net::FlowMod& mod) {
      apply(sw, mod);
    };
  }

  Table& table(net::NodeId sw) { return tables_[sw]; }
  bool has_rule(net::NodeId sw, net::RuleId id) const {
    auto it = tables_.find(sw);
    return it != tables_.end() && it->second.count(id) > 0;
  }
  /// The single rule installed at `sw` (fails the test if not exactly 1).
  const net::Rule& only_rule(net::NodeId sw) const {
    const Table& t = tables_.at(sw);
    EXPECT_EQ(t.size(), 1u) << "switch " << sw;
    return t.begin()->second;
  }
  bool empty(net::NodeId sw) const {
    auto it = tables_.find(sw);
    return it == tables_.end() || it->second.empty();
  }

 private:
  Duration latency_of(net::NodeId sw) const {
    auto it = latency_.find(sw);
    return it == latency_.end() ? kLatency : it->second;
  }
  bool apply(net::NodeId sw, const net::FlowMod& mod) {
    if (fail_.count({sw, mod.type})) return false;
    Table& t = tables_[sw];
    switch (mod.type) {
      case net::FlowModType::kInsert:
        t[mod.rule.id] = mod.rule;
        return true;
      case net::FlowModType::kModify: {
        auto it = t.find(mod.rule.id);
        if (it == t.end()) return false;
        it->second = mod.rule;
        return true;
      }
      case net::FlowModType::kDelete:
        return t.erase(mod.rule.id) > 0;
    }
    return false;
  }

  std::unordered_map<net::NodeId, Table> tables_;
  std::unordered_map<net::NodeId, Duration> latency_;
  std::set<std::pair<net::NodeId, net::FlowModType>> fail_;
};

net::Rule old_rule_for(net::NodeId node, net::NodeId successor) {
  return net::Rule{100 + static_cast<net::RuleId>(node), 1, {},
                   net::forward_to(static_cast<int>(successor))};
}

net::Rule new_rule_for(net::NodeId node, net::NodeId successor) {
  return net::Rule{200 + static_cast<net::RuleId>(node), 1, {},
                   net::forward_to(static_cast<int>(successor))};
}

/// Builds the rerouting request for old_path -> new_path with the
/// port-is-next-node convention, installs the old rules into the fabric,
/// and seeds the checker mirror with the old path.
UpdateCoordinator::TxnRequest make_request(const net::Path& old_path,
                                           const net::Path& new_path,
                                           FakeFabric& fabric,
                                           ConsistencyChecker& checker) {
  UpdateCoordinator::TxnRequest req;
  req.plan = net::plan_update(old_path, new_path);
  for (std::size_t i = 0; i + 1 < old_path.size(); ++i) {
    net::Rule rule = old_rule_for(old_path[i], old_path[i + 1]);
    req.old_rules.emplace(old_path[i], rule);
    fabric.table(old_path[i]).emplace(rule.id, rule);
  }
  for (std::size_t i = 0; i + 1 < new_path.size(); ++i)
    req.new_rules.emplace(new_path[i],
                          new_rule_for(new_path[i], new_path[i + 1]));
  checker.add_flow(0, old_path);
  return req;
}

struct ObservedOp {
  Time time = 0;
  net::NodeId sw = net::kInvalidNode;
  net::FlowModType type = net::FlowModType::kInsert;
  bool ok = false;
};

CoordinatorConfig segway_config() {
  CoordinatorConfig c;
  c.signal_delay = kSignal;
  return c;
}

/// One coordinator + fabric + checker wired together.
struct Harness {
  explicit Harness(CoordinatorConfig config = segway_config())
      : coordinator(events, fabric.batch_dispatch(), fabric.mod_dispatch(),
                    config) {
    coordinator.set_observer(
        [this](Time t, net::NodeId sw, const net::FlowMod& mod, bool ok) {
          ops.push_back({t, sw, mod.type, ok});
          checker.apply(0, sw, mod, ok);
        });
  }

  std::uint64_t run(const net::Path& old_path, const net::Path& new_path) {
    auto req = make_request(old_path, new_path, fabric, checker);
    std::uint64_t id = coordinator.begin(
        events.now(), std::move(req),
        [this](Time, const TxnOutcome& o) { outcome = o; });
    return id;
  }

  sim::EventQueue events;
  FakeFabric fabric;
  ConsistencyChecker checker;
  UpdateCoordinator coordinator;
  std::vector<ObservedOp> ops;
  TxnOutcome outcome;
};

TEST(UpdateCoordinator, InOrderCommitTimingAndFinalState) {
  Harness h;
  h.run({0, 1, 2, 3}, {0, 4, 5, 3});
  h.events.run_all();

  EXPECT_TRUE(h.outcome.committed);
  EXPECT_FALSE(h.outcome.cancelled);
  EXPECT_EQ(h.outcome.segments, 1);
  EXPECT_EQ(h.outcome.adds, 2);
  EXPECT_EQ(h.outcome.flips, 1);
  EXPECT_EQ(h.outcome.failed_ops, 0);
  EXPECT_EQ(h.outcome.rollback_flips, 0);
  // Adds land at kLatency; the barrier release pays one signal_delay; the
  // entry flip then takes another kLatency. Commit = last flip completion.
  EXPECT_EQ(h.outcome.done, kLatency + kSignal + kLatency);

  // Fabric converged to the pure-new state: entry keeps its rule id with
  // the new action, internals hold fresh rules, old internals are empty.
  EXPECT_EQ(h.fabric.only_rule(0).id, net::RuleId{100});
  EXPECT_EQ(h.fabric.only_rule(0).action, net::forward_to(4));
  EXPECT_EQ(h.fabric.only_rule(4).action, net::forward_to(5));
  EXPECT_EQ(h.fabric.only_rule(5).action, net::forward_to(3));
  EXPECT_TRUE(h.fabric.empty(1));
  EXPECT_TRUE(h.fabric.empty(2));

  EXPECT_EQ(h.checker.violation_instants(), 0);
  EXPECT_EQ(h.checker.trace(0), net::ForwardTrace::kDelivered);
  EXPECT_EQ(h.checker.next_hop(0).at(0), 4);
  EXPECT_GT(h.checker.checks(), 0);
}

TEST(UpdateCoordinator, OutOfOrderFlipWaitsForDownstreamSegments) {
  Harness h;
  // old 0-1-2-3, new 0-2-1-3: segment 2->1 is out-of-order and must flip
  // strictly after segment 1->3.
  h.run({0, 1, 2, 3}, {0, 2, 1, 3});
  h.events.run_all();

  EXPECT_TRUE(h.outcome.committed);
  EXPECT_EQ(h.outcome.flips, 3);
  EXPECT_EQ(h.outcome.adds, 0);
  // Independent flips complete at kLatency; segment 1's release then pays
  // signal_delay + kLatency on top of segment 2's completion.
  EXPECT_EQ(h.outcome.done, kLatency + kSignal + kLatency);

  Time flip_at_1 = 0, flip_at_2 = 0;
  for (const ObservedOp& op : h.ops) {
    if (op.type != net::FlowModType::kModify) continue;
    if (op.sw == 1) flip_at_1 = op.time;
    if (op.sw == 2) flip_at_2 = op.time;
  }
  EXPECT_GT(flip_at_1, 0);
  EXPECT_GT(flip_at_2, flip_at_1);  // the loop-freedom ordering

  EXPECT_EQ(h.checker.violation_instants(), 0);
  EXPECT_EQ(h.checker.trace(0), net::ForwardTrace::kDelivered);
  EXPECT_EQ(h.checker.next_hop(0).at(0), 2);
  EXPECT_EQ(h.checker.next_hop(0).at(2), 1);
  EXPECT_EQ(h.checker.next_hop(0).at(1), 3);
}

TEST(UpdateCoordinator, AddFailureRollsBackToExactOldState) {
  Harness h;
  h.fabric.fail(5, net::FlowModType::kInsert);
  h.run({0, 1, 2, 3}, {0, 4, 5, 3});
  h.events.run_all();

  EXPECT_FALSE(h.outcome.committed);
  EXPECT_FALSE(h.outcome.cancelled);
  EXPECT_EQ(h.outcome.failed_ops, 1);
  EXPECT_EQ(h.outcome.flips, 0);
  EXPECT_EQ(h.outcome.rollback_flips, 0);

  // Old state byte-for-byte: no flip ever fired, the sibling add was
  // deleted, old rules untouched.
  for (net::NodeId sw : {0, 1, 2})
    EXPECT_EQ(h.fabric.only_rule(sw), old_rule_for(sw, sw + 1));
  EXPECT_TRUE(h.fabric.empty(4));
  EXPECT_TRUE(h.fabric.empty(5));

  EXPECT_EQ(h.checker.violation_instants(), 0);
  EXPECT_EQ(h.checker.trace(0), net::ForwardTrace::kDelivered);
  EXPECT_EQ(h.checker.next_hop(0).at(0), 1);
}

TEST(UpdateCoordinator, FlipFailureUnflipsCommittedEntries) {
  Harness h;
  // old 0-1-2-3-4, new 0-5-2-6-4: two segments. Entry 0 flips fine;
  // entry 2's modify is rejected, forcing a rollback that un-flips 0.
  h.fabric.fail(2, net::FlowModType::kModify);
  h.run({0, 1, 2, 3, 4}, {0, 5, 2, 6, 4});
  h.events.run_all();

  EXPECT_FALSE(h.outcome.committed);
  EXPECT_EQ(h.outcome.failed_ops, 1);
  EXPECT_EQ(h.outcome.adds, 2);
  EXPECT_EQ(h.outcome.flips, 1);
  EXPECT_EQ(h.outcome.rollback_flips, 1);

  for (net::NodeId sw : {0, 1, 2, 3})
    EXPECT_EQ(h.fabric.only_rule(sw), old_rule_for(sw, sw + 1));
  EXPECT_TRUE(h.fabric.empty(5));
  EXPECT_TRUE(h.fabric.empty(6));

  EXPECT_EQ(h.checker.violation_instants(), 0);
  EXPECT_EQ(h.checker.trace(0), net::ForwardTrace::kDelivered);
}

TEST(UpdateCoordinator, LateFailureRestoresAlreadyRemovedRules) {
  Harness h;
  // Segment 0 (entry 0, add 5) completes fast, its removal gate clears,
  // and old rule 1 is DELETED — all long before segment 1's slow add
  // (node 6, latency 100) lets entry 2 flip... which then fails. The
  // rollback must re-install rule 1 BEFORE un-flipping entry 0, or the
  // restored old path would blackhole at 1.
  h.fabric.set_latency(6, 100);
  h.fabric.fail(2, net::FlowModType::kModify);
  h.run({0, 1, 2, 3, 4}, {0, 5, 2, 6, 4});

  // Sanity mid-run: the gated removal really does land first.
  h.events.run_until(60);
  EXPECT_TRUE(h.fabric.empty(1));
  h.events.run_all();

  EXPECT_FALSE(h.outcome.committed);
  EXPECT_EQ(h.outcome.rollback_flips, 1);

  // Pure old state again, including the re-installed rule at 1.
  for (net::NodeId sw : {0, 1, 2, 3})
    EXPECT_EQ(h.fabric.only_rule(sw), old_rule_for(sw, sw + 1));
  EXPECT_TRUE(h.fabric.empty(5));
  EXPECT_TRUE(h.fabric.empty(6));

  EXPECT_EQ(h.checker.violation_instants(), 0);
  EXPECT_EQ(h.checker.trace(0), net::ForwardTrace::kDelivered);
}

TEST(UpdateCoordinator, CancelMidFlightDeletesInstalledAdds) {
  Harness h;
  std::uint64_t id = h.run({0, 1, 2, 3}, {0, 4, 5, 3});
  // Let the adds dispatch (they complete at kLatency) and cancel while
  // they are in flight.
  h.events.run_until(kLatency / 2);
  h.coordinator.cancel(id);
  h.events.run_all();

  EXPECT_TRUE(h.outcome.cancelled);
  EXPECT_FALSE(h.outcome.committed);
  EXPECT_EQ(h.coordinator.active(), 0);

  for (net::NodeId sw : {0, 1, 2})
    EXPECT_EQ(h.fabric.only_rule(sw), old_rule_for(sw, sw + 1));
  EXPECT_TRUE(h.fabric.empty(4));
  EXPECT_TRUE(h.fabric.empty(5));
  EXPECT_EQ(h.checker.violation_instants(), 0);
}

TEST(UpdateCoordinator, ZeroSignalDelayCommitsAtAddPlusFlipLatency) {
  Harness h{CoordinatorConfig{}};
  h.run({0, 1, 2, 3}, {0, 4, 5, 3});
  h.events.run_all();
  EXPECT_TRUE(h.outcome.committed);
  // No signaling cost: barrier at kLatency, flip completes one kLatency
  // later.
  EXPECT_EQ(h.outcome.done, 2 * kLatency);
}

TEST(UpdateCoordinator, MetricsCountTransactionLifecycle) {
  obs::Registry registry;
  obs::attach(&registry);
  {
    Harness committed;
    committed.run({0, 1, 2, 3}, {0, 2, 1, 3});  // out-of-order, commits
    committed.events.run_all();

    Harness aborted;
    aborted.fabric.fail(5, net::FlowModType::kInsert);
    aborted.run({0, 1, 2, 3}, {0, 4, 5, 3});
    aborted.events.run_all();
  }
  obs::attach(nullptr);

  EXPECT_EQ(registry.counter_value("update.txns"), 2u);
  EXPECT_EQ(registry.counter_value("update.committed"), 1u);
  EXPECT_EQ(registry.counter_value("update.aborted"), 1u);
  EXPECT_EQ(registry.counter_value("update.cancelled"), 0u);
  EXPECT_EQ(registry.counter_value("update.out_of_order_txns"), 1u);
  EXPECT_EQ(registry.counter_value("update.flips"), 3u);
  EXPECT_EQ(registry.counter_value("update.adds"), 1u);  // sibling of the fail
  EXPECT_EQ(registry.counter_value("update.failed_ops"), 1u);
  EXPECT_EQ(registry.histogram_summary("update.segments").count, 2u);
  EXPECT_EQ(registry.histogram_summary("update.completion_ns").count, 1u);
}

CoordinatorConfig two_phase_config() {
  CoordinatorConfig c;
  c.strategy = Strategy::kTwoPhase;
  c.ctrl_rtt = 40;
  c.ctrl_send_gap = 2;
  return c;
}

TEST(UpdateCoordinator, TwoPhaseLoopsOnOutOfOrderRerouteWhereSegwayDoesNot) {
  // The same out-of-order reroute, both strategies. ez-Segway: zero
  // violation instants. Naive two-phase fires all flips as fast as it
  // can serialize them: entry 2 flips onto not-yet-flipped entry 1 and
  // the flow transiently loops.
  Harness segway;
  segway.run({0, 1, 2, 3}, {0, 2, 1, 3});
  segway.events.run_all();
  ASSERT_TRUE(segway.outcome.committed);
  EXPECT_EQ(segway.checker.violation_instants(), 0);

  Harness two_phase{two_phase_config()};
  two_phase.run({0, 1, 2, 3}, {0, 2, 1, 3});
  two_phase.events.run_all();
  ASSERT_TRUE(two_phase.outcome.committed);
  EXPECT_GT(two_phase.checker.loop_instants(), 0);
  // Both converge to the new path eventually...
  EXPECT_EQ(two_phase.checker.trace(0), net::ForwardTrace::kDelivered);
  EXPECT_EQ(two_phase.checker.next_hop(0).at(0), 2);
  // ...but the controller round-trips make two-phase slower too.
  EXPECT_GT(two_phase.outcome.done, segway.outcome.done);
}

TEST(UpdateCoordinator, TwoPhasePartialFlipFailureStrandsMixedState) {
  // Entry 1's flip (segment 1->3) is rejected after entries 0 and 2
  // already flipped. The naive controller gives up without rolling back:
  // the fabric is permanently 0->2->1->2... — a forwarding loop that is
  // neither the old nor the new path. This is exactly the inconsistency
  // ez-Segway's dependency order makes impossible (the failing entry
  // would have been flipped FIRST, before anything pointed at it).
  Harness h{two_phase_config()};
  h.fabric.fail(1, net::FlowModType::kModify);
  h.run({0, 1, 2, 3}, {0, 2, 1, 3});
  h.events.run_all();

  EXPECT_FALSE(h.outcome.committed);
  EXPECT_EQ(h.outcome.failed_ops, 1);
  EXPECT_EQ(h.outcome.rollback_flips, 0);  // no rollback protocol

  EXPECT_EQ(h.fabric.only_rule(0).action, net::forward_to(2));  // new
  EXPECT_EQ(h.fabric.only_rule(2).action, net::forward_to(1));  // new
  EXPECT_EQ(h.fabric.only_rule(1).action, net::forward_to(2));  // old
  EXPECT_EQ(h.checker.trace(0), net::ForwardTrace::kLoop);
  EXPECT_GT(h.checker.loop_instants(), 0);
}

}  // namespace
}  // namespace hermes::update
