# Empty dependencies file for bench_fig09_fct.
# This may be replaced when dependencies are built.
