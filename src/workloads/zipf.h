// Zipf multi-tenant flow-rule workload: the millions-of-flows regime the
// rule-cache hierarchy (src/cache/) targets.
//
// The rule set models a multi-tenant switch: per tenant, one low-priority
// /8 default route, a band of /12 traffic-engineering aggregates, and a
// large population of exact-match /32 flow rules — far more than any TCAM
// holds, which is the premise of flow-driven caching (the ShadowSwitch
// seam generalized to an unbounded software tier). The traffic stream
// draws flows Zipf-distributed (YCSB-style zeta sampling, constant time
// per draw after an O(n) zeta precomputation), so a small popular head
// dominates lookups while a long tail forces churn; a configurable
// fraction of "scan" packets hits uniformly random addresses inside a
// tenant's /8, exercising the aggregate and default tiers.
//
// Everything is deterministic in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "net/rule.h"

namespace hermes::workloads {

struct ZipfConfig {
  /// Total /32 flow rules across all tenants (split evenly).
  int flows = 1'000'000;
  int tenants = 4;
  /// Zipf skew (YCSB's theta); 0.99 is the YCSB default, ~0.7-1.0 is the
  /// range measured for data-center flow popularity.
  double skew = 0.99;
  /// /12 traffic-engineering aggregates per tenant.
  int aggregates_per_tenant = 16;
  /// Fraction of traffic hitting uniform random addresses (misses the
  /// flow-rule tier, lands on aggregates/defaults).
  double scan_fraction = 0.02;
  std::uint64_t seed = 1;

  /// Popularity drift: every `rotate_period` draws (0 = static
  /// popularity) the Zipf rank -> flow mapping shifts by `rotate_step`
  /// ranks (mod the per-tenant flow count), so the hot head migrates to
  /// a fresh flow population. Real flow popularity drifts; frequency
  /// policies without aging fossilize on the old head.
  std::uint64_t rotate_period = 0;
  std::uint64_t rotate_step = 0;

  int flow_priority = 8;
  int aggregate_priority = 4;
  int default_priority = 1;
};

/// Constant-time Zipf(n, theta) sampler over ranks [0, n), YCSB style:
/// one O(n) zeta(n, theta) precomputation, then each draw costs two pow()
/// calls. Rank 0 is the most popular item.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed);

  /// Next Zipf-distributed rank in [0, n).
  std::uint64_t next();

  std::uint64_t n() const { return n_; }

 private:
  double uniform();  ///< next double in [0, 1)

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double threshold_;  ///< 1 + 0.5^theta, the two-item fast path bound
  std::uint64_t state_;
};

/// The full multi-tenant rule set: flow rules (ids 1..flows), then
/// aggregates and defaults (ids from kZipfAggregateIdBase), priority
/// bands per ZipfConfig. Order: defaults, aggregates, then flows grouped
/// by tenant — installing in order builds coarse-to-fine.
inline constexpr net::RuleId kZipfAggregateIdBase = 1'000'000'000;
std::vector<net::Rule> make_zipf_rules(const ZipfConfig& config);

/// The /32 address of flow-rule rank `k` of `tenant` (the same mapping
/// make_zipf_rules uses): tenant octet up top, a bijectively scrambled
/// low-24 so popular flows are scattered across the tenant space.
net::Ipv4Address zipf_flow_address(const ZipfConfig& config, int tenant,
                                   std::uint64_t rank);

/// Stateful traffic stream over the rule set: Zipf-popular flow packets
/// with a scan_fraction of uniform noise, tenants drawn round-robin.
class ZipfTraffic {
 public:
  explicit ZipfTraffic(const ZipfConfig& config);

  /// Destination address of the next packet.
  net::Ipv4Address next();

 private:
  ZipfConfig config_;
  ZipfGenerator zipf_;
  std::uint64_t state_;
  int next_tenant_ = 0;
  std::uint64_t draws_ = 0;
  std::uint64_t shift_ = 0;  ///< accumulated rank rotation
};

}  // namespace hermes::workloads
