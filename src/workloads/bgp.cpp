#include "workloads/bgp.h"

#include <algorithm>
#include <random>

namespace hermes::workloads {

namespace {

std::uint64_t prefix_key(const net::Prefix& p) {
  return (static_cast<std::uint64_t>(p.address().value()) << 6) |
         static_cast<std::uint64_t>(p.length());
}

// A plausible global-table prefix: /16.../24 drawn from a few RIR-ish
// blocks, deterministic in the index.
net::Prefix synthetic_prefix(std::mt19937_64& rng) {
  static constexpr std::uint32_t kBlocks[] = {
      0x01000000u,  // 1.0.0.0/8-ish (APNIC)
      0x17000000u,  // 23.0.0.0/8-ish (ARIN)
      0x33000000u,  // 51.0.0.0/8-ish (RIPE)
      0x67000000u,  // 103.0.0.0/8-ish
      0xB9000000u,  // 185.0.0.0/8-ish
      0xC0000000u,  // 192.0.0.0/8-ish
  };
  std::uint32_t block = kBlocks[rng() % std::size(kBlocks)];
  int length = 16 + static_cast<int>(rng() % 9);  // /16 .. /24
  std::uint32_t host = static_cast<std::uint32_t>(rng()) & 0x00FFFFFFu;
  return net::Prefix(net::Ipv4Address(block | host), length);
}

}  // namespace

BgpFeedConfig equinix_chicago() {
  BgpFeedConfig c;
  c.prefix_count = 8000;
  c.peer_count = 12;
  c.base_rate = 60;
  c.burst_rate = 2500;
  c.burst_probability = 0.03;
  c.seed = 101;
  return c;
}

BgpFeedConfig telxatl_atlanta() {
  BgpFeedConfig c;
  c.prefix_count = 6000;
  c.peer_count = 10;
  c.base_rate = 45;
  c.burst_rate = 1800;
  c.burst_probability = 0.025;
  c.seed = 202;
  return c;
}

BgpFeedConfig nwax_portland() {
  BgpFeedConfig c;
  c.prefix_count = 3000;
  c.peer_count = 6;
  c.base_rate = 25;
  c.burst_rate = 1200;
  c.burst_probability = 0.015;
  c.seed = 303;
  return c;
}

BgpFeedConfig route_views_oregon() {
  BgpFeedConfig c;
  c.prefix_count = 10000;
  c.peer_count = 16;
  c.base_rate = 80;
  c.burst_rate = 3000;
  c.burst_probability = 0.035;
  c.seed = 404;
  return c;
}

std::vector<BgpUpdate> bgp_feed(const BgpFeedConfig& config) {
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Pre-generate the prefix universe.
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(static_cast<std::size_t>(config.prefix_count));
  for (int i = 0; i < config.prefix_count; ++i)
    prefixes.push_back(synthetic_prefix(rng));

  std::vector<BgpUpdate> feed;
  double t = 0;
  bool bursting = false;
  double burst_end = 0;
  // Unstable prefixes flap far more than stable ones: 10% of prefixes
  // carry 90% of the churn (BGP's well-known heavy tail).
  auto pick_prefix = [&]() -> const net::Prefix& {
    if (unit(rng) < 0.9) {
      std::size_t hot = prefixes.size() / 10 + 1;
      return prefixes[rng() % hot];
    }
    return prefixes[rng() % prefixes.size()];
  };

  while (t < config.duration_s) {
    if (bursting && t >= burst_end) bursting = false;
    if (!bursting && unit(rng) < config.burst_probability) {
      bursting = true;
      std::exponential_distribution<double> len(1.0 / config.mean_burst_s);
      burst_end = t + len(rng);
    }
    double rate = bursting ? config.burst_rate : config.base_rate;
    std::exponential_distribution<double> gap(rate);
    t += gap(rng);
    if (t >= config.duration_s) break;

    BgpUpdate u;
    u.time = from_seconds(t);
    u.prefix = pick_prefix();
    u.peer = static_cast<int>(rng() %
                              static_cast<std::uint64_t>(config.peer_count));
    u.withdraw = unit(rng) < config.withdraw_fraction;
    if (!u.withdraw) {
      u.local_pref = 100 + 10 * static_cast<int>(rng() % 3);
      u.as_path_len = 2 + static_cast<int>(rng() % 5);
    }
    feed.push_back(u);
  }
  return feed;
}

const Rib::Route* Rib::best_of(const PrefixState& state) {
  const Route* best = nullptr;
  for (const Route& r : state.routes) {
    if (!best) {
      best = &r;
      continue;
    }
    if (r.local_pref != best->local_pref) {
      if (r.local_pref > best->local_pref) best = &r;
    } else if (r.as_path_len != best->as_path_len) {
      if (r.as_path_len < best->as_path_len) best = &r;
    } else if (r.peer < best->peer) {
      best = &r;
    }
  }
  return best;
}

net::RuleId Rib::rule_id_for(const net::Prefix& prefix) {
  auto [it, inserted] = rule_ids_.emplace(prefix_key(prefix), next_rule_id_);
  if (inserted) ++next_rule_id_;
  return it->second;
}

std::optional<net::FlowMod> Rib::apply(const BgpUpdate& update) {
  ++updates_seen_;
  std::uint64_t key = prefix_key(update.prefix);
  PrefixState& state = rib_[key];

  auto it = std::find_if(state.routes.begin(), state.routes.end(),
                         [&](const Route& r) { return r.peer == update.peer; });
  if (update.withdraw) {
    if (it == state.routes.end()) return std::nullopt;  // nothing to drop
    state.routes.erase(it);
  } else if (it == state.routes.end()) {
    state.routes.push_back(
        Route{update.peer, update.local_pref, update.as_path_len});
  } else {
    it->local_pref = update.local_pref;
    it->as_path_len = update.as_path_len;
  }

  const Route* best = best_of(state);
  auto fib_it = fib_next_hop_.find(key);

  if (!best) {
    // All routes gone: prefix leaves the FIB.
    rib_.erase(key);
    if (fib_it == fib_next_hop_.end()) return std::nullopt;
    fib_next_hop_.erase(fib_it);
    ++fib_changes_;
    net::Rule rule{rule_id_for(update.prefix), update.prefix.length(),
                   update.prefix, {}};
    return net::FlowMod{net::FlowModType::kDelete, rule};
  }

  // LPM encoding in TCAM: priority = prefix length, next hop = egress port
  // toward the best peer.
  net::Rule rule{rule_id_for(update.prefix), update.prefix.length(),
                 update.prefix, net::forward_to(best->peer)};
  if (fib_it == fib_next_hop_.end()) {
    fib_next_hop_.emplace(key, best->peer);
    ++fib_changes_;
    return net::FlowMod{net::FlowModType::kInsert, rule};
  }
  if (fib_it->second == best->peer) return std::nullopt;  // RIB-only change
  fib_it->second = best->peer;
  ++fib_changes_;
  // Next-hop change without priority change: a cheap modify (Section 2.1).
  return net::FlowMod{net::FlowModType::kModify, rule};
}

double Rib::fib_percolation_rate() const {
  if (updates_seen_ == 0) return 0;
  return static_cast<double>(fib_changes_) /
         static_cast<double>(updates_seen_);
}

RuleTrace fib_trace(const std::vector<BgpUpdate>& feed) {
  Rib rib;
  RuleTrace trace;
  for (const BgpUpdate& update : feed) {
    if (auto mod = rib.apply(update))
      trace.push_back(RuleEvent{update.time, *mod});
  }
  return trace;
}

}  // namespace hermes::workloads
