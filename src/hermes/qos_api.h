// The operator-facing abstractions of Section 7.
//
// Network operators request guarantees per switch through a small API:
//
//   int    CreateTCAMQoS(switch_id, perf_guarantee, match_predicate)
//   bool   DeleteQoS(shadow_id)
//   bool   ModQoSConfig(shadow_id, perf_guarantee)
//   bool   ModQoSMatch(shadow_id, match_predicate)
//   double QoSOverheads(switch_id, perf_guarantee, match_predicate)
//
// CreateTCAMQoS returns a descriptor for later modification/deletion and
// exposes the max burst rate Hermes will support (Equation 2), which the
// Gate Keeper enforces by admission control.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "hermes/hermes_agent.h"

namespace hermes::core {

using SwitchId = int;
using ShadowId = int;
inline constexpr ShadowId kInvalidShadowId = -1;

/// What CreateTCAMQoS hands back to the operator.
struct QoSDescriptor {
  ShadowId id = kInvalidShadowId;
  SwitchId switch_id = -1;
  Duration guarantee = 0;
  int shadow_capacity = 0;
  double max_burst_rate = 0.0;  ///< Equation 2 (inserts/s)
  double tcam_overhead = 0.0;   ///< fraction of the TCAM spent
};

/// Manages Hermes deployments across a fleet of switches. One QoS config
/// per switch in this implementation (the single-table model of Section 3;
/// Section 6's multi-table extension would key configs by (switch, table)).
class QoSManager {
 public:
  /// Registers a switch eligible for Hermes configuration.
  void register_switch(SwitchId id, const tcam::SwitchModel& model,
                       int tcam_capacity);

  /// Creates a QoS configuration: carves the switch TCAM and instantiates
  /// a HermesAgent. Returns nullopt when the switch is unknown, already
  /// configured, or the guarantee is unsatisfiable.
  std::optional<QoSDescriptor> CreateTCAMQoS(SwitchId switch_id,
                                             Duration perf_guarantee,
                                             RulePredicate match_predicate);

  /// Tears down a QoS configuration (the switch reverts to a plain
  /// monolithic table on its next reconfiguration).
  bool DeleteQoS(ShadowId shadow_id);

  /// Re-sizes the shadow table for a new guarantee. Existing shadow
  /// residents are migrated first.
  bool ModQoSConfig(ShadowId shadow_id, Duration perf_guarantee);

  /// Swaps the guarantee predicate.
  bool ModQoSMatch(ShadowId shadow_id, RulePredicate match_predicate);

  /// Pure what-if: the TCAM fraction a guarantee would cost on a switch,
  /// without configuring anything. Negative when unsatisfiable/unknown.
  double QoSOverheads(SwitchId switch_id, Duration perf_guarantee,
                      const RulePredicate& match_predicate) const;

  /// The live agent behind a descriptor (nullptr when deleted/unknown).
  HermesAgent* agent(ShadowId shadow_id);
  const QoSDescriptor* descriptor(ShadowId shadow_id) const;

 private:
  struct SwitchEntry {
    const tcam::SwitchModel* model = nullptr;
    int tcam_capacity = 0;
    ShadowId active = kInvalidShadowId;
  };
  struct QosEntry {
    QoSDescriptor descriptor;
    std::unique_ptr<HermesAgent> agent;
  };

  std::map<SwitchId, SwitchEntry> switches_;
  std::map<ShadowId, QosEntry> configs_;
  ShadowId next_shadow_id_ = 1;
};

}  // namespace hermes::core
