// Property tests for TcamTable::insert_batch: the single-pass multi-insert
// must be observationally identical to the sequential per-op path — same
// final array (bit for bit), same per-rule accept/fail decisions and shift
// counts, same stats — for arbitrary mixed batches (duplicate ids,
// overlapping priorities, capacity overflow).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "tcam/asic.h"
#include "tcam/tcam_table.h"

namespace hermes::tcam {
namespace {

using net::Rule;

Rule random_rule(std::mt19937& rng, int id_space, int priority_space) {
  std::uniform_int_distribution<int> id_dist(1, id_space);
  std::uniform_int_distribution<int> prio_dist(0, priority_space - 1);
  std::uniform_int_distribution<std::uint32_t> addr(0, 0xFFFFFF);
  std::uniform_int_distribution<int> len(8, 32);
  net::RuleId id = static_cast<net::RuleId>(id_dist(rng));
  int prefix_len = len(rng);
  net::Ipv4Address base(addr(rng) << 8);
  return Rule{id, prio_dist(rng), net::Prefix(base, prefix_len),
              net::forward_to(id_dist(rng) % 48)};
}

/// Seeds both tables with the same resident rules (ids offset out of the
/// batch id space so residents and batch rules can still collide when the
/// generator reuses an id).
void seed_tables(TcamTable& a, TcamTable& b, std::mt19937& rng, int count,
                 int id_space, int priority_space) {
  for (int i = 0; i < count; ++i) {
    Rule r = random_rule(rng, id_space, priority_space);
    a.insert(r);
    b.insert(r);
  }
}

struct SequentialOutcome {
  std::vector<OpResult> per_op;
  int inserted = 0;
  int failed = 0;
  std::uint64_t total_shifts = 0;
};

SequentialOutcome run_sequential(TcamTable& table,
                                 const std::vector<Rule>& rules,
                                 bool stop_at_first_failure) {
  SequentialOutcome out;
  out.per_op.resize(rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    OpResult r = table.insert(rules[i]);
    out.per_op[i] = r;
    if (r.ok) {
      ++out.inserted;
      out.total_shifts += static_cast<std::uint64_t>(r.shifts);
    } else {
      ++out.failed;
      if (stop_at_first_failure) break;
    }
  }
  return out;
}

void expect_identical(const TcamTable& batched, const TcamTable& sequential,
                      std::uint64_t seed) {
  ASSERT_TRUE(batched.check_invariant()) << "seed " << seed;
  ASSERT_TRUE(sequential.check_invariant()) << "seed " << seed;
  // Bit-identical physical array: same entries in the same slots.
  ASSERT_EQ(batched.rules_view(), sequential.rules_view())
      << "seed " << seed;
  const TableStats& bs = batched.stats();
  const TableStats& ss = sequential.stats();
  EXPECT_EQ(bs.inserts, ss.inserts) << "seed " << seed;
  EXPECT_EQ(bs.failed_inserts, ss.failed_inserts) << "seed " << seed;
  EXPECT_EQ(bs.total_shifts, ss.total_shifts) << "seed " << seed;
}

TEST(InsertBatchProperty, MatchesSequentialOnRandomMixedBatches) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    std::mt19937 rng(static_cast<unsigned>(seed));
    std::uniform_int_distribution<int> cap_dist(8, 96);
    std::uniform_int_distribution<int> batch_dist(1, 64);
    int capacity = cap_dist(rng);
    TcamTable batched(capacity);
    TcamTable sequential(capacity);
    // Small id/priority spaces force duplicate ids and equal-priority
    // ties; seeding near half-capacity makes overflow reachable.
    seed_tables(batched, sequential, rng, capacity / 2, /*id_space=*/48,
                /*priority_space=*/8);

    std::vector<Rule> rules;
    int batch_size = batch_dist(rng);
    for (int i = 0; i < batch_size; ++i)
      rules.push_back(random_rule(rng, 48, 8));

    std::vector<OpResult> per_op;
    TcamTable::BatchInsertResult result =
        batched.insert_batch(rules, &per_op,
                             /*stop_at_first_failure=*/false);
    SequentialOutcome expected =
        run_sequential(sequential, rules, /*stop_at_first_failure=*/false);

    EXPECT_EQ(result.inserted, expected.inserted) << "seed " << seed;
    EXPECT_EQ(result.failed, expected.failed) << "seed " << seed;
    EXPECT_EQ(result.total_shifts, expected.total_shifts)
        << "seed " << seed;
    ASSERT_EQ(per_op.size(), expected.per_op.size());
    for (std::size_t i = 0; i < per_op.size(); ++i) {
      EXPECT_EQ(per_op[i].ok, expected.per_op[i].ok)
          << "seed " << seed << " rule " << i;
      EXPECT_EQ(per_op[i].shifts, expected.per_op[i].shifts)
          << "seed " << seed << " rule " << i;
    }
    expect_identical(batched, sequential, seed);
  }
}

TEST(InsertBatchProperty, StopModeMatchesLoopWithBreak) {
  for (std::uint64_t seed = 100; seed <= 130; ++seed) {
    std::mt19937 rng(static_cast<unsigned>(seed));
    std::uniform_int_distribution<int> cap_dist(4, 32);
    int capacity = cap_dist(rng);
    TcamTable batched(capacity);
    TcamTable sequential(capacity);
    seed_tables(batched, sequential, rng, capacity / 2, /*id_space=*/24,
                /*priority_space=*/5);

    std::vector<Rule> rules;
    for (int i = 0; i < 48; ++i) rules.push_back(random_rule(rng, 24, 5));

    std::vector<OpResult> per_op;
    TcamTable::BatchInsertResult result =
        batched.insert_batch(rules, &per_op,
                             /*stop_at_first_failure=*/true);
    SequentialOutcome expected =
        run_sequential(sequential, rules, /*stop_at_first_failure=*/true);

    EXPECT_EQ(result.inserted, expected.inserted) << "seed " << seed;
    // Stop mode charges exactly the first failing rule.
    EXPECT_LE(result.failed, 1) << "seed " << seed;
    EXPECT_EQ(result.failed, expected.failed) << "seed " << seed;
    for (std::size_t i = 0; i < per_op.size(); ++i) {
      EXPECT_EQ(per_op[i].ok, expected.per_op[i].ok)
          << "seed " << seed << " rule " << i;
      EXPECT_EQ(per_op[i].shifts, expected.per_op[i].shifts)
          << "seed " << seed << " rule " << i;
    }
    expect_identical(batched, sequential, seed);
  }
}

TEST(InsertBatchProperty, EqualPriorityKeepsBatchOrderBelowResidents) {
  TcamTable batched(10);
  TcamTable sequential(10);
  // Residents at the contested priority.
  for (net::RuleId id : {10u, 11u}) {
    Rule r{id, 5, net::Prefix(net::Ipv4Address(id << 8), 24),
           net::forward_to(1)};
    batched.insert(r);
    sequential.insert(r);
  }
  std::vector<Rule> rules;
  for (net::RuleId id : {1u, 2u, 3u}) {
    rules.push_back(Rule{id, 5, net::Prefix(net::Ipv4Address(id << 8), 24),
                         net::forward_to(2)});
  }
  batched.insert_batch(rules);
  for (const Rule& r : rules) sequential.insert(r);
  ASSERT_EQ(batched.rules_view(), sequential.rules_view());
  // Residents stay on top of the equal-priority run; batch arrival order
  // is preserved below them.
  const auto& view = batched.rules_view();
  ASSERT_EQ(view.size(), 5u);
  EXPECT_EQ(view[0].id, 10u);
  EXPECT_EQ(view[1].id, 11u);
  EXPECT_EQ(view[2].id, 1u);
  EXPECT_EQ(view[3].id, 2u);
  EXPECT_EQ(view[4].id, 3u);
}

TEST(InsertBatchProperty, EmptyBatchIsANoOp) {
  TcamTable table(10);
  std::vector<OpResult> per_op{{true, 3}};  // stale contents get cleared
  TcamTable::BatchInsertResult result =
      table.insert_batch({}, &per_op, /*stop_at_first_failure=*/false);
  EXPECT_EQ(result.inserted, 0);
  EXPECT_EQ(result.failed, 0);
  EXPECT_TRUE(per_op.empty());
  EXPECT_EQ(table.stats().inserts, 0u);
}

// The completion-time ordering criterion at the ASIC level: a batched
// multi-insert completes every rule at the single batch-done time, so a
// stable sort of rules by completion time preserves submission order —
// exactly the order the sequential path completes them in (per-slice
// channel serialization makes sequential completions non-decreasing in
// submission order).
TEST(InsertBatchProperty, AsicCompletionOrderingMatchesSequential) {
  for (std::uint64_t seed = 200; seed <= 210; ++seed) {
    std::mt19937 rng(static_cast<unsigned>(seed));
    Asic batched(pica8_p3290(), {256});
    Asic sequential(pica8_p3290(), {256});
    std::vector<Rule> rules;
    for (int i = 0; i < 32; ++i) {
      Rule r = random_rule(rng, 10'000, 8);
      r.id = static_cast<net::RuleId>(i + 1);  // unique: all accepted
      rules.push_back(r);
    }

    Asic::BatchResult result;
    Time batch_done = batched.submit_batch_insert(0, 0, rules, &result);
    ASSERT_EQ(result.inserted, static_cast<int>(rules.size()));

    std::vector<Time> seq_completions;
    for (const Rule& r : rules)
      seq_completions.push_back(
          sequential.submit(0, 0, {net::FlowModType::kInsert, r}));

    // Sequential completions are non-decreasing in submission order, so
    // "order by completion" is submission order on both paths.
    for (std::size_t i = 1; i < seq_completions.size(); ++i)
      EXPECT_GE(seq_completions[i], seq_completions[i - 1])
          << "seed " << seed;
    EXPECT_GT(batch_done, 0) << "seed " << seed;
    // And the final arrays agree bit-for-bit.
    EXPECT_EQ(batched.slice(0).rules_view(),
              sequential.slice(0).rules_view())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace hermes::tcam
