// Network-wide consistent update transactions over an UpdatePlan.
//
// The coordinator executes one rerouting transaction per flow: install
// ("add") the flow's rule at every new-path-only switch, flip each
// segment's entry common node old->new in the dependency order computed
// by net::plan_update(), then retire the old-path-only rules once their
// removal gates clear. Two execution strategies share the machinery:
//
//  * kSegway — decentralized ez-Segway signaling. Every per-switch
//    operation is a FlowModBatch dispatched at its virtual ready time;
//    the batch's result slots (the install barrier) are what "releases"
//    the successor operations, paying only `signal_delay` per
//    switch-to-switch hand-off — no controller round-trips. In the
//    simulator the dispatch goes through the fleet mailboxes in sharded
//    mode, so the release chain is exactly the per-switch agent telling
//    its successor "my segment is in".
//  * kTwoPhase — the naive centralized baseline: the controller collects
//    every add ack (paying ctrl_rtt per phase plus a per-message send
//    gap), then fires ALL entry flips concurrently, ignoring segment
//    dependencies. Out-of-order reroutes transiently loop, and a
//    mid-phase failure or switch reset strands the network in a MIXED
//    old/new state (it does not roll flips back) — precisely the
//    behavior the update regression suite pins down and bench_update
//    quantifies.
//
// Failure semantics (kSegway): any add or flip that a backend reports
// failed (fault injection past its retry budget, or a reset-wiped rule)
// aborts the transaction and rolls it back — already-flipped entries are
// un-flipped in reverse flip order (falling back to re-inserting the old
// rule when the un-flip modify itself fails on a wiped switch), and
// every installed add is deleted. The old rules are never removed before
// commit, so an aborted transaction leaves the network in the OLD
// consistent state; a committed one leaves it in the NEW state. cancel()
// (the flow completed mid-update) deletes the installed adds and stops.
//
// All times are virtual (sim::EventQueue); the coordinator is
// single-threaded on the control thread and drives backends through the
// caller-supplied dispatch callbacks, which may post through
// sim::FleetController mailboxes (post_batch + join) in sharded mode.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/flow_mod_batch.h"
#include "net/rule.h"
#include "net/time.h"
#include "net/update_plan.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"

namespace hermes::update {

enum class Strategy : std::uint8_t { kSegway, kTwoPhase };

struct CoordinatorConfig {
  Strategy strategy = Strategy::kSegway;

  /// kSegway: latency of one switch-to-switch release signal (an agent
  /// telling a successor its segment completed). Zero = same-instant
  /// release, the data-center approximation.
  Duration signal_delay = 0;

  /// kTwoPhase: controller round-trip. Each phase pays rtt/2 to deliver
  /// the command and rtt/2 for the ack before the next phase may start.
  Duration ctrl_rtt = 0;

  /// kTwoPhase: serialization gap between consecutive controller sends
  /// within one phase (the controller fans out over one channel).
  Duration ctrl_send_gap = 0;
};

/// Final report for one transaction, delivered to the DoneFn.
struct TxnOutcome {
  std::uint64_t txn = 0;
  bool committed = false;
  bool cancelled = false;
  Time begin = 0;
  /// Commit: the last flip's completion (the network is consistently on
  /// the new path; removals may still be in flight). Abort: when the
  /// rollback finished issuing.
  Time done = 0;
  int segments = 0;
  int adds = 0;          ///< add operations that landed
  int flips = 0;         ///< entry flips that landed (incl. virtual ingress)
  int failed_ops = 0;    ///< operations a backend reported failed
  int rollback_flips = 0;  ///< un-flips issued while rolling back
};

class UpdateCoordinator {
 public:
  /// Dispatches one single-mod transaction to `sw` at virtual time `now`
  /// and fills the batch's result slots before returning (directly in
  /// sequential mode; post_batch + join in fleet mode). Must complete
  /// every slot (completion >= now).
  using BatchDispatch =
      std::function<void(Time, net::NodeId, net::FlowModBatch&)>;
  /// Fire-and-forget mod (removals, rollback deletes) — results unused.
  using ModDispatch =
      std::function<void(Time, net::NodeId, const net::FlowMod&)>;
  using DoneFn = std::function<void(Time, const TxnOutcome&)>;
  /// Test/bench hook: called at the completion instant of every
  /// forwarding-state-changing operation with its effect and outcome.
  /// Virtual nodes (hosts, perfect-control-plane switches) report a
  /// synthetic kModify whose action is forward_to(<new-path successor>).
  using OpObserver =
      std::function<void(Time, net::NodeId, const net::FlowMod&, bool ok)>;

  /// One rerouting transaction. Nodes absent from both rule maps are
  /// virtual: their operations complete instantly without a dispatch
  /// (hosts, or switches on a perfect control plane).
  struct TxnRequest {
    net::UpdatePlan plan;
    /// Existing per-flow rule at each old-path switch. Commons present
    /// here flip via kModify (id and match kept, action replaced).
    std::unordered_map<net::NodeId, net::Rule> old_rules;
    /// Rule to install at each new-path switch (fresh ids, caller
    /// allocated). For commons with an old rule only the action is used.
    std::unordered_map<net::NodeId, net::Rule> new_rules;
  };

  UpdateCoordinator(sim::EventQueue& events, BatchDispatch batch,
                    ModDispatch mod, CoordinatorConfig config = {});

  /// Starts a transaction; `done` fires exactly once (commit, abort, or
  /// cancel). Returns the transaction id.
  std::uint64_t begin(Time now, TxnRequest req, DoneFn done);

  /// Abandons an in-flight transaction (e.g. the flow completed): no
  /// further phases are issued, installed adds are deleted, and done
  /// reports cancelled. No-op for unknown/finished ids.
  void cancel(std::uint64_t txn);

  void set_observer(OpObserver observer) { observer_ = std::move(observer); }

  int active() const { return active_; }
  const CoordinatorConfig& config() const { return config_; }

 private:
  struct SegState {
    Time add_done = 0;
    int adds_pending = 0;
    int deps_pending = 0;
    bool flip_issued = false;
    bool flip_done = false;
    /// The flip is released by a remote event (an internal add barrier or
    /// another entry's flip), so issuing it pays one signal_delay.
    bool needs_signal = false;
    Time flip_time = 0;
  };
  struct Txn {
    std::uint64_t id = 0;
    TxnRequest req;
    DoneFn done;
    TxnOutcome out;
    std::vector<SegState> segs;
    std::vector<std::vector<int>> dependents;  // seg -> segs gated on it
    std::vector<int> removal_pending;          // per group: flips left
    int flips_left = 0;
    int outstanding = 0;  // scheduled ops whose completion hasn't fired
    Time phase_barrier = 0;  // kTwoPhase: max ack of the finished phase
    Time last_flip = 0;      // kTwoPhase: max flip completion
    bool failed = false;
    bool cancelled = false;
    bool rolling_back = false;
    /// Adds that landed, for rollback/cancel deletion (switch, rule id).
    std::vector<std::pair<net::NodeId, net::RuleId>> added;
    /// Old rules whose gated removal already landed before a failure
    /// aborted the transaction. Rollback re-installs them FIRST (the
    /// reverse of add-before-flip): un-flipping an upstream common while
    /// its old-path internals are gone would blackhole.
    struct RemovedRule {
      net::NodeId sw;
      net::Rule rule;
      bool virt;
    };
    std::vector<RemovedRule> removed;
    /// Segments whose flip landed, in completion order (rollback order
    /// is the reverse).
    std::vector<int> flip_order;
  };

  Txn* find(std::uint64_t id);
  bool is_virtual(const Txn& t, net::NodeId node) const;
  net::NodeId new_successor(const Txn& t, int seg) const;
  net::NodeId old_successor(const Txn& t, net::NodeId node) const;
  net::FlowMod flip_mod(const Txn& t, int seg) const;
  void on_add_done(Time now, std::uint64_t id, int seg, net::NodeId sw,
                   net::RuleId rule, bool ok, bool issued);
  void check_stalled(Time now, std::uint64_t id);
  void delete_adds(Time now, Txn& t);

  // kSegway machinery.
  void seg_adds_complete(Time now, std::uint64_t id, int seg);
  void maybe_flip(Time now, std::uint64_t id, int seg);
  void issue_flip(Time now, std::uint64_t id, int seg);
  void on_flip_done(Time now, std::uint64_t id, int seg, bool ok);
  void maybe_remove(Time now, std::uint64_t id, int group);
  void start_rollback(Time now, std::uint64_t id);
  void rollback_next_flip(Time now, std::uint64_t id, std::size_t idx);
  void finish(Time now, std::uint64_t id);

  // kTwoPhase machinery.
  void begin_two_phase(Time now, Txn& t);
  void two_phase_flips(Time now, std::uint64_t id);
  void two_phase_finish(Time now, std::uint64_t id);

  /// Issues one op to `sw` (or completes it instantly when `virt`) and
  /// returns its (completion, ok). Schedules the observer notification
  /// at the completion instant.
  std::pair<Time, bool> dispatch_op(Time now, net::NodeId sw,
                                    const net::FlowMod& mod, bool virt);

  sim::EventQueue& events_;
  BatchDispatch batch_;
  ModDispatch mod_;
  OpObserver observer_;
  CoordinatorConfig config_;
  std::uint64_t next_id_ = 1;
  int active_ = 0;
  std::unordered_map<std::uint64_t, Txn> txns_;

  obs::Counter obs_txns_ = obs::attached_counter("update.txns");
  obs::Counter obs_committed_ = obs::attached_counter("update.committed");
  obs::Counter obs_aborted_ = obs::attached_counter("update.aborted");
  obs::Counter obs_cancelled_ = obs::attached_counter("update.cancelled");
  obs::Counter obs_adds_ = obs::attached_counter("update.adds");
  obs::Counter obs_flips_ = obs::attached_counter("update.flips");
  obs::Counter obs_removes_ = obs::attached_counter("update.removes");
  obs::Counter obs_failed_ops_ = obs::attached_counter("update.failed_ops");
  obs::Counter obs_rollback_flips_ =
      obs::attached_counter("update.rollback_flips");
  obs::Counter obs_out_of_order_ =
      obs::attached_counter("update.out_of_order_txns");
  obs::Histogram obs_segments_ = obs::attached_histogram("update.segments");
  obs::Histogram obs_completion_ns_ =
      obs::attached_histogram("update.completion_ns");
};

}  // namespace hermes::update
