
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bgp.cpp" "src/workloads/CMakeFiles/hermes_workloads.dir/bgp.cpp.o" "gcc" "src/workloads/CMakeFiles/hermes_workloads.dir/bgp.cpp.o.d"
  "/root/repo/src/workloads/facebook.cpp" "src/workloads/CMakeFiles/hermes_workloads.dir/facebook.cpp.o" "gcc" "src/workloads/CMakeFiles/hermes_workloads.dir/facebook.cpp.o.d"
  "/root/repo/src/workloads/gravity.cpp" "src/workloads/CMakeFiles/hermes_workloads.dir/gravity.cpp.o" "gcc" "src/workloads/CMakeFiles/hermes_workloads.dir/gravity.cpp.o.d"
  "/root/repo/src/workloads/microbench.cpp" "src/workloads/CMakeFiles/hermes_workloads.dir/microbench.cpp.o" "gcc" "src/workloads/CMakeFiles/hermes_workloads.dir/microbench.cpp.o.d"
  "/root/repo/src/workloads/trace_io.cpp" "src/workloads/CMakeFiles/hermes_workloads.dir/trace_io.cpp.o" "gcc" "src/workloads/CMakeFiles/hermes_workloads.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hermes_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
