// Batched TCAM update operations (the migration fast path, Section 5.2).
#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "tcam/asic.h"

namespace hermes::tcam {
namespace {

using net::Prefix;
using net::Rule;

Rule make_rule(net::RuleId id, int priority) {
  return Rule{id, priority,
              net::Prefix(net::Ipv4Address(0x0A000000u +
                                           (static_cast<std::uint32_t>(id)
                                            << 8)),
                          24),
              net::forward_to(1)};
}

TEST(BatchInsert, CostsOneWorstCaseInsertPlusSlotWrites) {
  const SwitchModel& m = pica8_p3290();
  EXPECT_EQ(m.batch_insert_latency(0, 1), m.insert_latency(0));
  EXPECT_EQ(m.batch_insert_latency(500, 10),
            m.insert_latency(500) + 9 * m.slot_write_latency());
  EXPECT_EQ(m.batch_insert_latency(500, 0), 0);
}

TEST(BatchInsert, FarCheaperThanSequentialAtScale) {
  const SwitchModel& m = pica8_p3290();
  int occupancy = 1000;
  int batch = 100;
  Duration batched = m.batch_insert_latency(occupancy, batch);
  Duration sequential = m.insert_latency(occupancy) * batch;
  EXPECT_LT(batched, sequential / 20);
}

TEST(BatchDelete, CostsOneDeletePlusInvalidations) {
  const SwitchModel& m = dell_8132f();
  EXPECT_EQ(m.batch_delete_latency(1), m.delete_latency());
  EXPECT_EQ(m.batch_delete_latency(5),
            m.delete_latency() + 4 * m.slot_write_latency());
  EXPECT_EQ(m.batch_delete_latency(0), 0);
}

TEST(AsicBatch, InsertsAllAndChargesOnce) {
  Asic asic(pica8_p3290(), {1000});
  std::vector<Rule> rules;
  for (int i = 0; i < 50; ++i)
    rules.push_back(make_rule(static_cast<net::RuleId>(i + 1), i % 7));
  Asic::BatchResult result;
  Time done = asic.submit_batch_insert(0, 0, rules, &result);
  EXPECT_EQ(result.inserted, 50);
  EXPECT_EQ(asic.slice(0).occupancy(), 50);
  EXPECT_EQ(done, result.latency);
  EXPECT_EQ(result.latency,
            pica8_p3290().batch_insert_latency(0, 50));
  EXPECT_TRUE(asic.slice(0).check_invariant());
}

TEST(AsicBatch, StopsAtCapacity) {
  Asic asic(pica8_p3290(), {10});
  std::vector<Rule> rules;
  for (int i = 0; i < 20; ++i)
    rules.push_back(make_rule(static_cast<net::RuleId>(i + 1), 1));
  Asic::BatchResult result;
  asic.submit_batch_insert(0, 0, rules, &result);
  EXPECT_EQ(result.inserted, 10);
  EXPECT_TRUE(asic.slice(0).full());
}

TEST(AsicBatch, DeleteRemovesListedIdsOnly) {
  Asic asic(pica8_p3290(), {100});
  for (int i = 0; i < 10; ++i)
    asic.apply(0, {net::FlowModType::kInsert,
                   make_rule(static_cast<net::RuleId>(i + 1), 1)});
  Asic::BatchResult result;
  Time done = asic.submit_batch_delete(from_millis(1), 0, {2, 4, 6, 99},
                                       &result);
  EXPECT_EQ(result.inserted, 3);  // 99 does not exist
  EXPECT_EQ(asic.slice(0).occupancy(), 7);
  EXPECT_FALSE(asic.slice(0).contains(4));
  EXPECT_TRUE(asic.slice(0).contains(5));
  EXPECT_EQ(done, from_millis(1) + result.latency);
}

TEST(AsicBatch, EmptyInsertBatchIsNoOpWithZeroChannelOccupation) {
  obs::Registry reg;
  obs::attach(&reg);
  {
    Asic asic(pica8_p3290(), {100});
    asic.apply(0, {net::FlowModType::kInsert, make_rule(1, 1)});
    Time before = asic.busy_until(0);
    Asic::BatchResult result{99, 99};
    Time done = asic.submit_batch_insert(from_millis(5), 0, {}, &result);
    EXPECT_EQ(done, from_millis(5));  // returns now, never queues
    EXPECT_EQ(result.inserted, 0);
    EXPECT_EQ(result.latency, 0);
    EXPECT_EQ(asic.busy_until(0), before);
    EXPECT_EQ(asic.slice(0).occupancy(), 1);
  }
  obs::attach(nullptr);
  EXPECT_EQ(reg.counter_value("asic.batch_ops"), 0u);
  EXPECT_EQ(reg.counter_value("asic.batch_rules"), 0u);
}

TEST(AsicBatch, EmptyDeleteBatchIsNoOpWithZeroChannelOccupation) {
  obs::Registry reg;
  obs::attach(&reg);
  {
    Asic asic(pica8_p3290(), {100});
    asic.apply(0, {net::FlowModType::kInsert, make_rule(1, 1)});
    Time before = asic.busy_until(0);
    Asic::BatchResult result{99, 99};
    Time done = asic.submit_batch_delete(from_millis(5), 0, {}, &result);
    EXPECT_EQ(done, from_millis(5));
    EXPECT_EQ(result.inserted, 0);
    EXPECT_EQ(result.latency, 0);
    EXPECT_EQ(asic.busy_until(0), before);
    EXPECT_EQ(asic.slice(0).occupancy(), 1);
  }
  obs::attach(nullptr);
  EXPECT_EQ(reg.counter_value("asic.batch_ops"), 0u);
}

TEST(AsicBatch, DeleteOfOnlyMissingIdsChargesNothingRemoved) {
  Asic asic(pica8_p3290(), {100});
  for (int i = 0; i < 5; ++i)
    asic.apply(0, {net::FlowModType::kInsert,
                   make_rule(static_cast<net::RuleId>(i + 1), 1)});
  Asic::BatchResult result;
  Time done = asic.submit_batch_delete(0, 0, {50, 60, 70}, &result);
  EXPECT_EQ(result.inserted, 0);  // nothing matched
  EXPECT_EQ(result.latency, pica8_p3290().batch_delete_latency(0));
  EXPECT_EQ(asic.slice(0).occupancy(), 5);
  EXPECT_EQ(done, result.latency);
  EXPECT_TRUE(asic.slice(0).check_invariant());
}

TEST(AsicBatch, DeleteBatchResultMatchesPerOpDeletes) {
  Asic batched(pica8_p3290(), {100});
  Asic sequential(pica8_p3290(), {100});
  for (int i = 0; i < 12; ++i) {
    net::FlowMod ins{net::FlowModType::kInsert,
                     make_rule(static_cast<net::RuleId>(i + 1), i % 3)};
    batched.apply(0, ins);
    sequential.apply(0, ins);
  }
  std::vector<net::RuleId> ids{3, 1, 99, 7, 7, 12};  // missing + repeated
  Asic::BatchResult result;
  batched.submit_batch_delete(0, 0, ids, &result);
  int per_op_removed = 0;
  for (net::RuleId id : ids) {
    net::FlowMod del{net::FlowModType::kDelete, net::Rule{id, 0, {}, {}}};
    if (sequential.apply(0, del).ok) ++per_op_removed;
  }
  EXPECT_EQ(result.inserted, per_op_removed);
  EXPECT_EQ(batched.slice(0).rules_view(), sequential.slice(0).rules_view());
  EXPECT_EQ(batched.slice(0).stats().deletes,
            sequential.slice(0).stats().deletes);
}

TEST(AsicBatch, PerSliceChannelsAreIndependent) {
  Asic asic(pica8_p3290(), {100, 100});
  std::vector<Rule> rules;
  for (int i = 0; i < 50; ++i)
    rules.push_back(make_rule(static_cast<net::RuleId>(i + 1), 1));
  asic.submit_batch_insert(0, 1, rules);  // occupies slice 1's channel
  // Slice 0 is idle: an insert there completes at base latency.
  Time done =
      asic.submit(0, 0, {net::FlowModType::kInsert, make_rule(500, 1)});
  EXPECT_EQ(done, pica8_p3290().base_latency());
  EXPECT_GT(asic.busy_until(1), asic.busy_until(0));
}

}  // namespace
}  // namespace hermes::tcam
