#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace hermes::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&](Time) { order.push_back(3); });
  q.schedule(10, [&](Time) { order.push_back(1); });
  q.schedule(20, [&](Time) { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.schedule(42, [&order, i](Time) { order.push_back(i); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMaySchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&](Time now) {
    ++fired;
    q.schedule(now + 1, [&](Time) { ++fired; });
  });
  q.run_all();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 2);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(10, [&](Time) { ++fired; });
  q.schedule(20, [&](Time) { ++fired; });
  q.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 15);
  EXPECT_EQ(q.size(), 1u);
  q.run_until(20);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ScheduleInUsesCurrentTime) {
  EventQueue q;
  Time seen = -1;
  q.schedule(5, [&](Time now) {
    q.schedule_in(7, [&](Time t) { seen = t; });
  });
  q.run_all();
  EXPECT_EQ(seen, 12);
}

TEST(EventQueue, RunNextOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.run_next());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, LateScheduleClampsToNowAndCounts) {
  obs::Registry reg;
  obs::attach(&reg);
  {
    EventQueue q;
    std::vector<Time> fired;
    q.schedule(10, [&](Time) {
      q.schedule(5, [&](Time t) { fired.push_back(t); });  // in the past
    });
    q.run_all();
    ASSERT_EQ(fired.size(), 1u);   // never dropped, and fires...
    EXPECT_EQ(fired[0], 10);       // ...at the clamped time, not t=5
    EXPECT_EQ(q.now(), 10);        // the clock never ran backwards
  }
  obs::attach(nullptr);
  EXPECT_EQ(reg.counter_value("sim.late_schedules"), 1u);
}

TEST(EventQueue, OnTimeSchedulesDoNotCountAsLate) {
  obs::Registry reg;
  obs::attach(&reg);
  {
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&](Time now) {
      q.schedule(now, [&](Time) { ++fired; });      // exactly now: fine
      q.schedule(now + 5, [&](Time) { ++fired; });  // future: fine
    });
    q.run_all();
    EXPECT_EQ(fired, 2);
  }
  obs::attach(nullptr);
  EXPECT_EQ(reg.counter_value("sim.late_schedules"), 0u);
}

TEST(EventQueue, LateEventsPreserveScheduleOrderAtClampedTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&](Time) {
    q.schedule(3, [&](Time) { order.push_back(1); });
    q.schedule(1, [&](Time) { order.push_back(2); });
    q.schedule(10, [&](Time) { order.push_back(3); });
  });
  q.run_all();
  // All three land at t=10; the seq tie-break keeps scheduling order.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunAllRespectsCap) {
  EventQueue q;
  int fired = 0;
  // Self-perpetuating event chain.
  std::function<void(Time)> tick = [&](Time now) {
    ++fired;
    q.schedule(now + 1, tick);
  };
  q.schedule(0, tick);
  q.run_all(100);
  EXPECT_EQ(fired, 100);
}

}  // namespace
}  // namespace hermes::sim
