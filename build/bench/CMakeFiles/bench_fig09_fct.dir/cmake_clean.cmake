file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_fct.dir/bench_fig09_fct.cpp.o"
  "CMakeFiles/bench_fig09_fct.dir/bench_fig09_fct.cpp.o.d"
  "bench_fig09_fct"
  "bench_fig09_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
