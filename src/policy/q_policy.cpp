#include "policy/q_policy.h"

#include <algorithm>
#include <cassert>

namespace hermes::policy {
namespace {

// splitmix64 finalizer (public-domain constants). Counter-based: the
// policy never holds generator state beyond the draw index, so a replay
// from the same seed is trivially bit-identical.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

QPolicy::QPolicy(QPolicyConfig config)
    : config_(config),
      state_count_(config.occupancy_bins * 3 * 3),
      table_(static_cast<std::size_t>(state_count_) * kActions, 0.0),
      visits_(table_.size(), 0),
      epsilon_(config.epsilon0) {
  assert(config_.occupancy_bins > 0);
  for (int s = 0; s < state_count_; ++s)
    table_[static_cast<std::size_t>(s) * kActions +
           static_cast<int>(core::MigrationAction::kMigrateLarge)] =
        config_.migrate_large_prior;
}

double QPolicy::draw01() {
  std::uint64_t h = splitmix64(config_.seed ^ splitmix64(draw_index_++));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

int QPolicy::encode(const core::PolicyState& state) const {
  int occ_bin = 0;
  if (state.shadow_capacity > 0) {
    occ_bin = std::min(
        config_.occupancy_bins - 1,
        state.shadow_occupancy * config_.occupancy_bins /
            state.shadow_capacity);
    occ_bin = std::max(0, occ_bin);
  }
  int trend_bin = 1;  // flat
  if (state.arrival_trend <= -config_.trend_unit) trend_bin = 0;
  else if (state.arrival_trend >= config_.trend_unit) trend_bin = 2;
  int fault_bin = 0;
  if (state.recent_fault_rate >= config_.fault_high) fault_bin = 2;
  else if (state.recent_fault_rate > 1e-9) fault_bin = 1;
  return (occ_bin * 3 + trend_bin) * 3 + fault_bin;
}

int QPolicy::greedy_action(int state) const {
  const double* row = &table_[static_cast<std::size_t>(state) * kActions];
  int best = 0;
  for (int a = 1; a < kActions; ++a)
    if (row[a] > row[best]) best = a;  // ties resolve to the lowest index
  return best;
}

core::MigrationAction QPolicy::decide(const core::PolicyState& state) {
  ++decisions_;
  if (baseline_) {
    core::MigrationAction action = baseline_->decide(state);
    ++action_counts_[static_cast<std::size_t>(action)];
    return action;
  }
  int s = encode(state);
  double occ_fraction =
      state.shadow_capacity > 0
          ? static_cast<double>(state.shadow_occupancy) /
                static_cast<double>(state.shadow_capacity)
          : 0.0;
  double potential = -config_.shaping_us * occ_fraction;

  // One-step TD update for the previous decision, now that both its
  // reward and its successor state are known. The reward is the task
  // reward from feedback() plus the potential-based shaping term
  // gamma * phi(s') - phi(s) (see QPolicyConfig::shaping_us):
  //   Q[s',a'] += alpha * (r + gamma * max_a Q[s][a] - Q[s',a'])
  if (!frozen_ && prev_state_ >= 0 && has_reward_) {
    double reward =
        pending_reward_ + config_.gamma * potential - prev_potential_;
    double bootstrap =
        table_[static_cast<std::size_t>(s) * kActions + greedy_action(s)];
    std::size_t cell =
        static_cast<std::size_t>(prev_state_) * kActions +
        static_cast<std::size_t>(prev_action_);
    double step = config_.alpha;
    if (config_.sample_average_alpha) {
      step = std::max(config_.alpha_floor,
                      std::min(config_.alpha,
                               1.0 / static_cast<double>(visits_[cell] + 1)));
    }
    double& q = table_[cell];
    q += step * (reward + config_.gamma * bootstrap - q);
    ++visits_[cell];
    ++updates_;
  }
  has_reward_ = false;
  prev_potential_ = potential;

  int action;
  if (!frozen_ && draw01() < epsilon_) {
    action = static_cast<int>(draw01() * kActions);
    action = std::min(action, kActions - 1);
  } else {
    action = greedy_action(s);
  }
  if (!frozen_)
    epsilon_ = std::max(config_.epsilon_min, epsilon_ * config_.epsilon_decay);

  prev_state_ = s;
  prev_action_ = action;
  ++action_counts_[static_cast<std::size_t>(action)];
  return static_cast<core::MigrationAction>(action);
}

void QPolicy::feedback(const core::PolicyFeedback& fb) {
  if (frozen_) return;
  pending_reward_ = -(fb.mean_insert_latency_us +
                      config_.violation_penalty_us * fb.violations);
  has_reward_ = true;
}

void QPolicy::end_episode() {
  prev_state_ = -1;
  prev_action_ = 0;
  prev_potential_ = 0.0;
  has_reward_ = false;
  pending_reward_ = 0.0;
}

}  // namespace hermes::policy
