# Empty dependencies file for bench_fig10_rit_comparison.
# This may be replaced when dependencies are built.
