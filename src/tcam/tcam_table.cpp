#include "tcam/tcam_table.h"

#include <algorithm>
#include <unordered_set>

namespace hermes::tcam {

namespace {
// Comparator matching the physical order: non-increasing priority.
constexpr auto kByPriorityDesc = [](const net::Rule& r, int priority) {
  return r.priority > priority;
};
constexpr auto kPriorityDescUpper = [](int priority, const net::Rule& r) {
  return priority > r.priority;
};
}  // namespace

TcamTable::TcamTable(int capacity) : capacity_(capacity > 0 ? capacity : 0) {
  entries_.reserve(static_cast<std::size_t>(capacity_));
  priority_of_.reserve(static_cast<std::size_t>(capacity_));
}

std::size_t TcamTable::locate(net::RuleId id) const {
  auto it = priority_of_.find(id);
  if (it == priority_of_.end()) return kNoSlot;
  int priority = it->second;
  auto lo = std::lower_bound(entries_.begin(), entries_.end(), priority,
                             kByPriorityDesc);
  auto hi = std::upper_bound(lo, entries_.end(), priority, kPriorityDescUpper);
  for (auto e = lo; e != hi; ++e) {
    if (e->id == id) return static_cast<std::size_t>(e - entries_.begin());
  }
  return kNoSlot;  // unreachable while the index invariant holds
}

OpResult TcamTable::insert(const net::Rule& rule) {
  if (full() || priority_of_.count(rule.id) > 0) {
    ++stats_.failed_inserts;
    obs_failed_inserts_.inc();
    return {false, 0};
  }
  // Insertion point: after every entry with priority >= rule.priority.
  // (Equal-priority entries keep arrival order; a new lowest-priority
  // rule appends at the bottom with zero shifts.)
  auto pos = std::upper_bound(entries_.begin(), entries_.end(), rule.priority,
                              kPriorityDescUpper);
  int shifts = static_cast<int>(entries_.end() - pos);
  entries_.insert(pos, rule);
  priority_of_.emplace(rule.id, rule.priority);
  engine_.insert(rule, seq_++);
  ++stats_.inserts;
  stats_.total_shifts += static_cast<std::uint64_t>(shifts);
  obs_inserts_.inc();
  obs_shifts_.inc(static_cast<std::uint64_t>(shifts));
  return {true, shifts};
}

TcamTable::BatchInsertResult TcamTable::insert_batch(
    std::span<const net::Rule> rules, std::vector<OpResult>* per_op,
    bool stop_at_first_failure) {
  BatchInsertResult out;
  if (per_op) {
    per_op->clear();
    per_op->resize(rules.size());  // unattempted slots read {false, 0}
  }
  if (rules.empty()) return out;
  obs_batch_size_.record(rules.size());

  // Acceptance pass: replay the sequential accept/fail decisions without
  // touching the array. A rule fails exactly when the per-op insert would
  // have: its id is resident or appeared earlier in the batch, or no slot
  // is free at its turn.
  std::vector<std::size_t> accepted;
  accepted.reserve(rules.size());
  std::unordered_set<net::RuleId> batch_ids;
  int free_slots = capacity_ - occupancy();
  // Sorted (ascending) priorities of already-accepted batch rules, for the
  // sequential shift count: entries a later batch rule would have shifted
  // include earlier batch rules of strictly lower priority.
  std::vector<int> accepted_priorities;
  std::vector<int> shifts_of(rules.size(), 0);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const net::Rule& r = rules[i];
    bool dup = priority_of_.count(r.id) > 0 || batch_ids.count(r.id) > 0;
    if (dup || free_slots == 0) {
      ++stats_.failed_inserts;
      obs_failed_inserts_.inc();
      ++out.failed;
      if (stop_at_first_failure) break;
      continue;
    }
    --free_slots;
    batch_ids.insert(r.id);
    auto pos = std::upper_bound(entries_.begin(), entries_.end(), r.priority,
                                kPriorityDescUpper);
    int below_resident = static_cast<int>(entries_.end() - pos);
    auto lower = std::lower_bound(accepted_priorities.begin(),
                                  accepted_priorities.end(), r.priority);
    int below_batch = static_cast<int>(lower - accepted_priorities.begin());
    shifts_of[i] = below_resident + below_batch;
    accepted_priorities.insert(lower, r.priority);
    accepted.push_back(i);
    if (per_op) (*per_op)[i] = {true, shifts_of[i]};
  }

  // Placement pass: ONE backward merge. Stable-sort the accepted rules by
  // descending priority (stability keeps batch arrival order within a
  // priority level), then merge from the bottom of the array upward so
  // every resident entry moves at most once. Residents of a priority equal
  // to an incoming rule stay above it, matching the per-op upper_bound
  // placement.
  std::vector<std::size_t> order = accepted;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return rules[a].priority > rules[b].priority;
                   });
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(entries_.size());
  const std::ptrdiff_t k = static_cast<std::ptrdiff_t>(order.size());
  entries_.resize(static_cast<std::size_t>(n + k));
  std::ptrdiff_t src = n - 1;
  std::ptrdiff_t write = n + k - 1;
  std::ptrdiff_t next = k - 1;
  while (next >= 0) {
    const net::Rule& incoming = rules[order[static_cast<std::size_t>(next)]];
    if (src >= 0 && entries_[static_cast<std::size_t>(src)].priority <
                        incoming.priority) {
      entries_[static_cast<std::size_t>(write--)] =
          entries_[static_cast<std::size_t>(src--)];
    } else {
      entries_[static_cast<std::size_t>(write--)] = incoming;
      --next;
    }
  }

  // Engine stamps follow batch order: equal-priority batch rules land in
  // batch arrival order below equal-priority residents, exactly like the
  // sequential insert loop.
  for (std::size_t i : accepted) {
    priority_of_.emplace(rules[i].id, rules[i].priority);
    engine_.insert(rules[i], seq_++);
    out.total_shifts += static_cast<std::uint64_t>(shifts_of[i]);
  }
  out.inserted = static_cast<int>(k);
  stats_.inserts += static_cast<std::uint64_t>(k);
  stats_.total_shifts += out.total_shifts;
  obs_inserts_.inc(static_cast<std::uint64_t>(k));
  obs_shifts_.inc(out.total_shifts);
  return out;
}

OpResult TcamTable::erase(net::RuleId id) {
  std::size_t slot = locate(id);
  if (slot == kNoSlot) return {false, 0};
  engine_.erase(entries_[slot]);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(slot));
  priority_of_.erase(id);
  ++stats_.deletes;
  obs_deletes_.inc();
  return {true, 0};
}

OpResult TcamTable::modify_action(net::RuleId id, const net::Action& action) {
  std::size_t slot = locate(id);
  if (slot == kNoSlot) return {false, 0};
  engine_.modify_action(entries_[slot], action);
  entries_[slot].action = action;
  ++stats_.modifies;
  obs_modifies_.inc();
  return {true, 0};
}

OpResult TcamTable::modify_match(net::RuleId id, const net::Prefix& match) {
  std::size_t slot = locate(id);
  if (slot == kNoSlot) return {false, 0};
  // Re-keys the engine node in place, preserving its arrival stamp (the
  // entry keeps its slot, so its tie-break position must not move).
  engine_.modify_match(entries_[slot], match);
  entries_[slot].match = match;
  ++stats_.modifies;
  obs_modifies_.inc();
  return {true, 0};
}

std::optional<net::Rule> TcamTable::lookup(net::Ipv4Address addr) {
  const net::Rule* r = lookup_ptr(addr);
  if (r == nullptr) return std::nullopt;
  return *r;
}

const net::Rule* TcamTable::lookup_ptr(net::Ipv4Address addr) {
  ++stats_.lookups;
  obs_lookups_.inc();
  int probed = 0;
  const net::Rule* r = engine_.lookup(addr, &probed);
  obs_lookup_probes_.record(static_cast<std::uint64_t>(probed));
  if (r != nullptr) {
    obs_lookup_hits_.inc();
  } else {
    obs_lookup_misses_.inc();
  }
  return r;
}

std::optional<net::Rule> TcamTable::peek(net::Ipv4Address addr) const {
  for (const net::Rule& r : entries_) {
    if (r.match.contains(addr)) return r;
  }
  return std::nullopt;
}

bool TcamTable::contains(net::RuleId id) const {
  return priority_of_.count(id) > 0;
}

std::optional<net::Rule> TcamTable::find(net::RuleId id) const {
  const net::Rule* r = find_ptr(id);
  if (!r) return std::nullopt;
  return *r;
}

const net::Rule* TcamTable::find_ptr(net::RuleId id) const {
  std::size_t slot = locate(id);
  return slot == kNoSlot ? nullptr : &entries_[slot];
}

std::vector<net::Rule> TcamTable::rules() const { return entries_; }

void TcamTable::clear() {
  entries_.clear();
  priority_of_.clear();
  engine_.clear();
}

bool TcamTable::check_invariant() const {
  if (static_cast<int>(entries_.size()) > capacity_) return false;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].priority > entries_[i - 1].priority) return false;
  }
  // Index <-> array agreement: exactly one index entry per rule, carrying
  // the priority the rule is filed under (what locate() relies on).
  if (priority_of_.size() != entries_.size()) return false;
  for (const net::Rule& r : entries_) {
    auto it = priority_of_.find(r.id);
    if (it == priority_of_.end() || it->second != r.priority) return false;
  }
  // Engine <-> array agreement: same population, structurally sound.
  if (engine_.size() != entries_.size()) return false;
  if (!engine_.check_invariant()) return false;
  return true;
}

}  // namespace hermes::tcam
