#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace hermes::sim {

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  double idx = q * static_cast<double>(samples.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1 - frac) + samples[hi] * frac;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  auto at = [&](double q) {
    double idx = q * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  };
  s.median = at(0.5);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  return s;
}

std::vector<std::pair<double, double>> cdf(
    const std::vector<double>& samples, int points) {
  std::vector<std::pair<double, double>> out;
  if (samples.empty() || points <= 0) return out;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  out.reserve(static_cast<std::size_t>(points) + 1);
  // Anchor the low tail: without the (min, 0) point the smallest sample
  // never appears and plotted CDFs start at the 1/points quantile.
  out.emplace_back(sorted.front(), 0.0);
  for (int i = 1; i <= points; ++i) {
    double q = static_cast<double>(i) / points;
    auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    out.emplace_back(sorted[idx], q);
  }
  return out;
}

std::string format_summary(const std::string& name, const Summary& s,
                           const std::string& unit) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-28s n=%6zu  med=%10.3f  mean=%10.3f  p95=%10.3f  "
                "p99=%10.3f  max=%10.3f %s",
                name.c_str(), s.count, s.median, s.mean, s.p95, s.p99,
                s.max, unit.c_str());
  return buf;
}

}  // namespace hermes::sim
