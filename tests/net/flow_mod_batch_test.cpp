// FlowModBatch: the batched-transaction value type.
#include "net/flow_mod_batch.h"

#include <gtest/gtest.h>

namespace hermes::net {
namespace {

Rule make_rule(RuleId id, int priority) {
  return Rule{id, priority,
              Prefix(Ipv4Address(0x0A000000u +
                                 (static_cast<std::uint32_t>(id) << 8)),
                     24),
              forward_to(1)};
}

TEST(FlowModBatch, BuildsMixedMods) {
  FlowModBatch batch;
  batch.reserve(3);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.insert(make_rule(1, 10)), 0u);
  EXPECT_EQ(batch.erase(7), 1u);
  EXPECT_EQ(batch.modify(make_rule(3, 20)), 2u);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.mod(0).type, FlowModType::kInsert);
  EXPECT_EQ(batch.mod(1).type, FlowModType::kDelete);
  EXPECT_EQ(batch.mod(1).rule.id, 7u);
  EXPECT_EQ(batch.mod(2).type, FlowModType::kModify);
  EXPECT_EQ(batch.mods().size(), 3u);
}

TEST(FlowModBatch, ResultSlotsStartPending) {
  FlowModBatch batch;
  batch.insert(make_rule(1, 10));
  batch.insert(make_rule(2, 10));
  for (const ModResult& r : batch.results()) {
    EXPECT_EQ(r.status, ModStatus::kPending);
    EXPECT_EQ(r.completion, 0);
  }
  EXPECT_EQ(batch.applied_count(), 0u);
  EXPECT_EQ(batch.failed_count(), 0u);
}

TEST(FlowModBatch, CompleteFillsSlotsAndCounts) {
  FlowModBatch batch;
  batch.insert(make_rule(1, 10));
  batch.insert(make_rule(2, 10));
  batch.insert(make_rule(3, 10));
  batch.complete(0, 100);
  batch.complete(1, 250, /*ok=*/false);
  EXPECT_EQ(batch.result(0).status, ModStatus::kApplied);
  EXPECT_EQ(batch.result(0).completion, 100);
  EXPECT_EQ(batch.result(1).status, ModStatus::kFailed);
  EXPECT_EQ(batch.result(2).status, ModStatus::kPending);
  EXPECT_EQ(batch.applied_count(), 1u);
  EXPECT_EQ(batch.failed_count(), 1u);
}

TEST(FlowModBatch, BarrierIsMaxCompletionOverProcessedMods) {
  FlowModBatch batch;
  batch.insert(make_rule(1, 10));
  batch.insert(make_rule(2, 10));
  batch.insert(make_rule(3, 10));
  EXPECT_EQ(batch.barrier(), 0);
  EXPECT_EQ(batch.barrier(42), 42);  // floor when nothing processed
  batch.complete(0, 100);
  batch.complete(1, 300, /*ok=*/false);  // failed mods still bound time
  EXPECT_EQ(batch.barrier(), 300);
  EXPECT_EQ(batch.barrier(1000), 1000);
}

TEST(FlowModBatch, ResetResultsKeepsMods) {
  FlowModBatch batch;
  batch.insert(make_rule(1, 10));
  batch.complete(0, 99);
  batch.reset_results();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.result(0).status, ModStatus::kPending);
  EXPECT_EQ(batch.barrier(), 0);
}

TEST(FlowModBatch, ClearDropsEverything) {
  FlowModBatch batch;
  batch.insert(make_rule(1, 10));
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.results().size(), 0u);
}

TEST(FlowModBatch, VectorConstructorSizesResults) {
  std::vector<FlowMod> mods{{FlowModType::kInsert, make_rule(1, 10)},
                            {FlowModType::kDelete, make_rule(2, 0)}};
  FlowModBatch batch(std::move(mods));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.results().size(), 2u);
  EXPECT_EQ(batch.result(1).status, ModStatus::kPending);
}

TEST(FlowModBatch, ToStringSummarizes) {
  FlowModBatch batch;
  batch.insert(make_rule(1, 10));
  batch.erase(2);
  batch.complete(0, 100);
  std::string s = to_string(batch);
  EXPECT_NE(s.find("2 mods"), std::string::npos);
  EXPECT_NE(s.find("1 ins"), std::string::npos);
  EXPECT_NE(s.find("1 del"), std::string::npos);
  EXPECT_NE(s.find("1 applied"), std::string::npos);
}

}  // namespace
}  // namespace hermes::net
