// Tests for the Facebook MapReduce and tomo-gravity generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "workloads/facebook.h"
#include "workloads/gravity.h"

namespace hermes::workloads {
namespace {

std::vector<net::NodeId> fake_hosts(int n) {
  std::vector<net::NodeId> hosts(static_cast<std::size_t>(n));
  std::iota(hosts.begin(), hosts.end(), 100);
  return hosts;
}

TEST(Facebook, GeneratesRequestedJobs) {
  FacebookConfig config;
  config.job_count = 200;
  auto jobs = facebook_jobs(config, fake_hosts(64));
  ASSERT_EQ(jobs.size(), 200u);
  for (const Job& j : jobs) {
    EXPECT_FALSE(j.flows.empty());
    for (const FlowSpec& f : j.flows) {
      EXPECT_NE(f.src, f.dst);
      EXPECT_GT(f.bytes, 0);
      EXPECT_GE(f.src, 100);
      EXPECT_LT(f.src, 164);
    }
  }
}

TEST(Facebook, ArrivalsAreOrderedWithinWindow) {
  FacebookConfig config;
  config.job_count = 100;
  config.duration_s = 30;
  auto jobs = facebook_jobs(config, fake_hosts(16));
  for (std::size_t i = 1; i < jobs.size(); ++i)
    EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
}

TEST(Facebook, DeterministicInSeed) {
  FacebookConfig config;
  config.job_count = 50;
  config.seed = 5;
  auto a = facebook_jobs(config, fake_hosts(16));
  auto b = facebook_jobs(config, fake_hosts(16));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].flows.size(), b[i].flows.size());
  }
}

TEST(Facebook, ShortJobsDominateInCountLongInBytes) {
  // The Figure 1 premise: most jobs are short (<1 GB) but the byte volume
  // lives in the long tail.
  FacebookConfig config;
  config.job_count = 2000;
  config.seed = 11;
  auto jobs = facebook_jobs(config, fake_hosts(128));
  int short_count = 0;
  double short_bytes = 0, total_bytes = 0;
  for (const Job& j : jobs) {
    double bytes = j.total_bytes();
    total_bytes += bytes;
    if (j.is_short()) {
      ++short_count;
      short_bytes += bytes;
    }
  }
  EXPECT_GT(short_count, 2000 / 2);                 // majority short
  EXPECT_LT(short_bytes, 0.5 * total_bytes);        // bytes in long jobs
}

TEST(Facebook, WidthsAreHeavyTailed) {
  FacebookConfig config;
  config.job_count = 2000;
  config.seed = 13;
  auto jobs = facebook_jobs(config, fake_hosts(128));
  std::vector<std::size_t> widths;
  for (const Job& j : jobs) widths.push_back(j.flows.size());
  std::sort(widths.begin(), widths.end());
  EXPECT_LE(widths.front(), 3u);
  EXPECT_GT(widths.back(), 20 * widths[widths.size() / 2]);
}

TEST(Gravity, MatrixShapeAndNormalization) {
  net::Topology topo = net::abilene();
  GravityConfig config;
  config.total_traffic_bps = 8e9;
  auto tm = gravity_matrix(topo, config);
  std::size_t n = topo.hosts().size();
  ASSERT_EQ(tm.size(), n);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(tm[i].size(), n);
    EXPECT_EQ(tm[i][i], 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_GE(tm[i][j], 0.0);
      total += tm[i][j];
    }
  }
  EXPECT_NEAR(total, 1e9, 1e-3);  // bps -> bytes/s
}

TEST(Gravity, MatrixIsGravityShaped) {
  // demand_ij * demand_ji ~ (m_i m_j)^2: the ratio demand_ij / demand_kj
  // must be independent of j (up to floating error) — the defining
  // property of a gravity matrix.
  net::Topology topo = net::geant();
  auto tm = gravity_matrix(topo, GravityConfig{});
  std::size_t n = tm.size();
  for (std::size_t j = 2; j < std::min<std::size_t>(n, 6); ++j) {
    double r0 = tm[0][j] / tm[1][j];
    double r1 = tm[0][2 == j ? 3 : 2] / tm[1][2 == j ? 3 : 2];
    EXPECT_NEAR(r0, r1, 1e-9 * std::max(r0, r1) + 1e-12);
  }
}

TEST(Gravity, FlowsMatchMatrixLoad) {
  net::Topology topo = net::abilene();
  GravityConfig config;
  config.total_traffic_bps = 2e9;
  config.duration_s = 30;
  config.mean_flow_bytes = 1e6;
  auto flows = gravity_flows(topo, config);
  ASSERT_FALSE(flows.empty());
  double bytes = 0;
  for (const FlowArrival& f : flows) {
    EXPECT_GE(f.time, 0);
    EXPECT_LE(to_seconds(f.time), 30.0);
    EXPECT_NE(f.flow.src, f.flow.dst);
    bytes += f.flow.bytes;
  }
  double expected = 2e9 / 8 * 30;
  EXPECT_NEAR(bytes, expected, expected * 0.15);
  for (std::size_t i = 1; i < flows.size(); ++i)
    EXPECT_GE(flows[i].time, flows[i - 1].time);
}

TEST(Gravity, DeterministicInSeed) {
  net::Topology topo = net::quest();
  GravityConfig config;
  config.duration_s = 5;
  auto a = gravity_flows(topo, config);
  auto b = gravity_flows(topo, config);
  ASSERT_EQ(a.size(), b.size());
  config.seed = 2;
  auto c = gravity_flows(topo, config);
  EXPECT_NE(a.size(), c.size());
}

TEST(JobHelpers, ShortLongSplit) {
  Job j;
  j.flows = {FlowSpec{0, 1, 5e8}, FlowSpec{1, 2, 4e8}};
  EXPECT_TRUE(j.is_short());
  EXPECT_NEAR(j.total_bytes(), 9e8, 1);
  j.flows.push_back(FlowSpec{2, 3, 2e8});
  EXPECT_FALSE(j.is_short());
}

}  // namespace
}  // namespace hermes::workloads
