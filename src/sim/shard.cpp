#include "sim/shard.h"

#include <cassert>

namespace hermes::sim {

ShardWorker::ShardWorker(int shard_id, std::size_t mailbox_capacity)
    : shard_id_(shard_id), inbox_(mailbox_capacity) {}

ShardWorker::~ShardWorker() { stop_and_join(); }

void ShardWorker::add_backend(net::NodeId sw,
                              baselines::SwitchBackend* backend) {
  assert(!started_ && "backends are pinned before the worker starts");
  backends_.emplace(sw, backend);
}

void ShardWorker::start() {
  if (started_) return;
  started_ = true;
  obs_occupancy_.record(backends_.size());
  worker_ = std::thread([this] { run_loop(); });
}

void ShardWorker::stop_and_join() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  inbox_.interrupt();
  if (worker_.joinable()) worker_.join();
  started_ = false;
}

void ShardWorker::post(ShardMsg msg) {
  ++posted_;
  inbox_.push(std::move(msg));
}

void ShardWorker::execute_now(const ShardMsg& msg) {
  ++posted_;
  execute(msg.time, msg);
  note_processed();
}

void ShardWorker::wait_drained(std::uint64_t target) {
  if (processed() >= target) return;
  std::unique_lock<std::mutex> lock(drained_mutex_);
  // Arm the notify gate, then re-check: the worker reads wait_target_
  // (seq_cst) after each seq_cst increment, so either it sees the armed
  // target and notifies, or this re-check sees its increment.
  wait_target_.store(target, std::memory_order_seq_cst);
  drained_cv_.wait(lock, [&] { return processed() >= target; });
  wait_target_.store(kNoWaiter, std::memory_order_seq_cst);
}

void ShardWorker::run_loop() {
  ShardMsg msg;
  while (true) {
    // Drain the inbox. Messages arrive in nondecreasing time (the control
    // thread's virtual clock is monotone) and the mailbox preserves FIFO
    // order, so the hot path executes straight off the ring — already the
    // exact posted (time, seq) sequence. A message that would run in the
    // past (never produced by the simulator; possible for a hand-driven
    // controller) falls back to the shard EventQueue, which clamps and
    // replays in (time, seq) order.
    std::uint64_t burst = 0;
    while (inbox_.try_pop(msg)) {
      ++burst;
      if (events_.empty() && msg.time >= watermark_) {
        watermark_ = msg.time;
        execute(msg.time, msg);
        note_processed();
      } else {
        events_.schedule(msg.time, [this, m = std::move(msg)](Time t) {
          execute(t, m);
        });
      }
    }
    if (burst > 0) obs_queue_depth_.record(burst);
    while (events_.run_next()) note_processed();
    if (inbox_.size() > 0) continue;
    if (stop_.load(std::memory_order_acquire)) break;
    inbox_.wait_nonempty(stop_);
  }
  // Shutdown drain: work posted before stop() must still complete.
  while (inbox_.try_pop(msg)) {
    if (events_.empty() && msg.time >= watermark_) {
      watermark_ = msg.time;
      execute(msg.time, msg);
      note_processed();
    } else {
      events_.schedule(msg.time,
                       [this, m = std::move(msg)](Time t) { execute(t, m); });
    }
  }
  while (events_.run_next()) note_processed();
}

void ShardWorker::execute(Time now, const ShardMsg& msg) {
  switch (msg.kind) {
    case ShardMsg::Kind::kMod: {
      auto it = backends_.find(msg.sw);
      assert(it != backends_.end() && "mod posted to the wrong shard");
      if (it != backends_.end()) it->second->handle(now, msg.mod);
      break;
    }
    case ShardMsg::Kind::kBatch: {
      auto it = backends_.find(msg.sw);
      assert(it != backends_.end() && "batch posted to the wrong shard");
      if (it != backends_.end()) it->second->handle_batch(now, *msg.batch);
      break;
    }
    case ShardMsg::Kind::kTick:
      for (auto& [sw, backend] : backends_) backend->tick(now);
      break;
  }
  obs_msgs_.inc();
}

void ShardWorker::note_processed() {
  // Publish (seq_cst also gives release): a control thread that acquires
  // this count sees every batch-result write the execution made. The
  // notify path only runs when a wait_drained() caller has armed
  // wait_target_ and this message reaches it — the common case is one
  // uncontended atomic increment and one load, no lock.
  std::uint64_t done = processed_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (done >= wait_target_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(drained_mutex_);
    drained_cv_.notify_all();
  }
}

}  // namespace hermes::sim
