#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py gating behavior.

Runs the tool as a subprocess against temp BENCH json pairs and checks
exit codes: 0 = ok, 1 = gated regression / missing / non-numeric metric.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, os.pardir, "tools", "bench_compare.py")


def doc(derived=None, results=None):
    return {
        "schema_version": 1,
        "benchmark": "unit_test_bench",
        "derived": derived or {},
        "results": results or [],
    }


def run_compare(base_doc, cand_doc, *extra_args):
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.json")
        cand_path = os.path.join(tmp, "cand.json")
        with open(base_path, "w", encoding="utf-8") as fh:
            json.dump(base_doc, fh)
        with open(cand_path, "w", encoding="utf-8") as fh:
            json.dump(cand_doc, fh)
        proc = subprocess.run(
            [sys.executable, TOOL, base_path, cand_path, *extra_args],
            capture_output=True, text=True)
    return proc


class BenchCompareTest(unittest.TestCase):
    def test_identical_docs_pass(self):
        d = doc(derived={"hermes_speedup": 4.0})
        proc = run_compare(d, d)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_improvement_passes(self):
        proc = run_compare(doc(derived={"hermes_speedup": 4.0}),
                           doc(derived={"hermes_speedup": 5.0}))
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_regression_beyond_threshold_fails(self):
        proc = run_compare(doc(derived={"hermes_speedup": 4.0}),
                           doc(derived={"hermes_speedup": 2.0}))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("regression", proc.stderr)

    def test_lower_is_better_direction(self):
        # No higher-is-better token in the name: a drop is an improvement.
        proc = run_compare(doc(derived={"median_ns": 100.0}),
                           doc(derived={"median_ns": 50.0}))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        proc = run_compare(doc(derived={"median_ns": 100.0}),
                           doc(derived={"median_ns": 200.0}))
        self.assertEqual(proc.returncode, 1)

    def test_missing_derived_metric_fails(self):
        proc = run_compare(doc(derived={"hermes_speedup": 4.0}),
                           doc(derived={}))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing from", proc.stderr)

    def test_non_numeric_derived_metric_fails(self):
        # report.h serializes NaN/inf as null; that must gate, not skip.
        proc = run_compare(doc(derived={"hermes_speedup": 4.0}),
                           doc(derived={"hermes_speedup": None}))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("non-numeric", proc.stderr)

    def test_non_numeric_row_field_fails_by_default(self):
        # Structural breakage in rows gates even under --gate derived: a
        # bench whose row field turned null is broken, not noisy.
        base = doc(results=[{"case": "a", "ns": 10.0}])
        cand = doc(results=[{"case": "a", "ns": None}])
        proc = run_compare(base, cand)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("non-numeric", proc.stderr)

    def test_missing_row_field_fails_by_default(self):
        base = doc(results=[{"case": "a", "ns": 10.0}])
        cand = doc(results=[{"case": "a"}])
        proc = run_compare(base, cand)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing from", proc.stderr)

    def test_missing_row_fails_by_default(self):
        base = doc(results=[{"case": "a", "ns": 10.0},
                            {"case": "b", "ns": 20.0}])
        cand = doc(results=[{"case": "a", "ns": 10.0}])
        proc = run_compare(base, cand)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("row[b]", proc.stderr)

    def test_row_value_regression_ungated_by_default(self):
        # VALUE changes in rows are machine-dependent: reported, no gate.
        base = doc(results=[{"case": "a", "ns": 10.0}])
        cand = doc(results=[{"case": "a", "ns": 100.0}])
        proc = run_compare(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("worse", proc.stdout)

    def test_row_value_regression_fails_with_gate_all(self):
        base = doc(results=[{"case": "a", "ns": 10.0}])
        cand = doc(results=[{"case": "a", "ns": 100.0}])
        proc = run_compare(base, cand, "--gate", "all")
        self.assertEqual(proc.returncode, 1)

    def test_benchmark_name_mismatch_is_usage_error(self):
        base = doc()
        cand = dict(doc(), benchmark="other_bench")
        proc = run_compare(base, cand)
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
