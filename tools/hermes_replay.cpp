// hermes_replay: replay a control-plane trace file against a switch
// backend and report installation-latency statistics.
//
//   hermes_replay <trace-file> [backend=hermes] [switch=pica8]
//                 [tcam=32768] [guarantee_ms=5]
//
// backends: hermes | plain | espres | tango | shadowswitch |
//           hermes-simple:<threshold>
// switches: pica8 | dell | hp
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "baselines/hermes_backend.h"
#include "sim/stats.h"
#include "tcam/switch_model.h"
#include "workloads/trace_io.h"

using namespace hermes;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hermes_replay <trace-file> [backend=hermes] "
               "[switch=pica8] [tcam=32768] [guarantee_ms=5]\n"
               "backends: hermes | plain | espres | tango | shadowswitch "
               "| hermes-simple:<threshold>\n"
               "switches: pica8 | dell | hp\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path = argv[1];
  std::string backend_kind = argc > 2 ? argv[2] : "hermes";
  std::string switch_name = argc > 3 ? argv[3] : "pica8";
  int tcam = argc > 4 ? std::atoi(argv[4]) : 32768;
  double guarantee_ms = argc > 5 ? std::atof(argv[5]) : 5.0;

  const tcam::SwitchModel* model = tcam::find_switch_model(switch_name);
  if (!model) {
    std::fprintf(stderr, "unknown switch '%s'\n", switch_name.c_str());
    return usage();
  }

  std::string error;
  auto trace = workloads::load_trace(path, &error);
  if (!trace) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  std::unique_ptr<baselines::SwitchBackend> backend;
  if (backend_kind.rfind("hermes-simple:", 0) == 0) {
    double threshold = std::atof(backend_kind.c_str() + 14);
    core::HermesConfig config;
    config.guarantee = from_millis(guarantee_ms);
    backend = baselines::make_hermes_simple(*model, tcam, threshold,
                                            config);
  } else if (backend_kind == "hermes") {
    core::HermesConfig config;
    config.guarantee = from_millis(guarantee_ms);
    backend = std::make_unique<baselines::HermesBackend>(*model, tcam,
                                                         config);
  } else {
    backend = baselines::make_backend(backend_kind, *model, tcam);
  }
  if (!backend) {
    std::fprintf(stderr, "unknown backend '%s'\n", backend_kind.c_str());
    return usage();
  }

  Time tick = from_millis(1);
  for (const auto& event : *trace) {
    while (tick <= event.time) {
      backend->tick(tick);
      tick += from_millis(1);
    }
    backend->handle(event.time, event.mod);
  }
  backend->tick(tick + from_millis(100));

  std::vector<double> rit_ms;
  for (Duration d : backend->rit_samples()) rit_ms.push_back(to_millis(d));
  std::printf("replayed %zu events (%s on %s, %d-entry TCAM)\n",
              trace->size(), std::string(backend->name()).c_str(),
              model->name().c_str(), tcam);
  std::printf("%s\n",
              sim::format_summary("install latency",
                                  sim::summarize(rit_ms), "ms")
                  .c_str());
  for (auto [value, prob] : sim::cdf(rit_ms, 10))
    std::printf("  %10.3f ms  %4.2f\n", value, prob);

  if (auto* hermes_backend =
          dynamic_cast<baselines::HermesBackend*>(backend.get())) {
    const auto& stats = hermes_backend->agent().stats();
    std::printf("hermes: %llu guaranteed, %llu main-path, %llu redundant, "
                "%llu pieces, %llu migrations, %llu violations\n",
                static_cast<unsigned long long>(stats.guaranteed_inserts),
                static_cast<unsigned long long>(stats.main_inserts),
                static_cast<unsigned long long>(stats.redundant_inserts),
                static_cast<unsigned long long>(stats.partition_pieces),
                static_cast<unsigned long long>(stats.migrations),
                static_cast<unsigned long long>(stats.violations));
  }
  return 0;
}
