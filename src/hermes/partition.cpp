#include "hermes/partition.h"

#include <algorithm>

#include "net/ipv4.h"

namespace hermes::core {

PartitionResult partition_new_rule(const net::Rule& new_rule,
                                   const OverlapIndex& main_index,
                                   bool merge) {
  PartitionResult result;
  std::vector<net::Rule> overlaps =
      main_index.overlapping(new_rule.match, new_rule.priority);

  // Current residual cover of the new rule's match.
  std::vector<net::Prefix> pieces{new_rule.match};
  if (overlaps.empty()) {
    result.pieces = std::move(pieces);
    return result;
  }

  // Cut the most specific (longest) overlaps last or first — order does
  // not affect the final set, but cutting the widest first lets wholesale
  // removals short-circuit the loop early.
  std::sort(overlaps.begin(), overlaps.end(),
            [](const net::Rule& a, const net::Rule& b) {
              return a.match.length() < b.match.length();
            });

  for (const net::Rule& o : overlaps) {
    std::vector<net::Prefix> next;
    next.reserve(pieces.size() + 4);
    bool cut_something = false;
    for (const net::Prefix& piece : pieces) {
      if (o.match.contains(piece)) {
        // Figure 5 (a) applied to this piece: wholly covered, drop it.
        cut_something = true;
        continue;
      }
      if (piece.contains(o.match)) {
        // Figure 5 (b)/(c): carve the covered sub-range out of the piece.
        auto residual = net::prefix_difference(piece, o.match);
        next.insert(next.end(), residual.begin(), residual.end());
        cut_something = true;
        continue;
      }
      next.push_back(piece);  // disjoint: untouched
    }
    if (cut_something) result.cut_against.push_back(o.id);
    pieces = std::move(next);
    if (pieces.empty()) break;
  }

  if (pieces.empty()) {
    result.redundant = true;
    return result;
  }
  result.pieces =
      merge ? net::merge_prefixes(std::move(pieces)) : std::move(pieces);
  return result;
}

std::vector<net::Rule> materialize_partitions(const net::Rule& original,
                                              const PartitionResult& result,
                                              net::RuleId first_id) {
  std::vector<net::Rule> rules;
  rules.reserve(result.pieces.size());
  for (const net::Prefix& piece : result.pieces) {
    net::Rule r = original;
    r.id = first_id++;
    r.match = piece;
    rules.push_back(r);
  }
  return rules;
}

}  // namespace hermes::core
