// Shared machine-readable result emission for the bench harnesses.
//
// Every bench binary opens a Reporter at the top of main() and writes a
// schema-versioned BENCH_<name>.json next to its human-readable output:
//
//   auto& rep = report::open("fig08_rit");
//   rep.row().label("backend", "hermes").value("p99_ms", p99);
//   rep.derived("speedup", plain_p99 / hermes_p99);
//   rep.write();                       // -> BENCH_fig08_rit.json
//
// open() also attaches a process-wide obs::Registry (unless the
// HERMES_OBS environment variable is "off" or "0"), so every component
// built afterwards — TCAM slices, gate keepers, agents, simulations —
// feeds counters/histograms/trace events that write() embeds under
// "metrics". Rows produced through bench::print_summary_line are added
// automatically (see common.h).
//
// JSON document shape (schema_version 1):
//   {
//     "schema_version": 1,
//     "benchmark": "<name>",
//     "unit": "<unit of the primary value columns>",
//     "results":  [ {"<label>": "...", "<value>": 1.23, ...}, ... ],
//     "derived":  { "<metric>": 4.56, ... },
//     "metrics":  { ...obs::export_json()... } | null
//   }
// tools/bench_compare.py diffs two such documents.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace hermes::bench::report {

namespace detail {

inline void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

inline void append_num(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  out += buf;
}

}  // namespace detail

/// One result row: ordered label (string) and value (number) fields.
class Row {
 public:
  Row& label(std::string key, std::string value) {
    fields_.push_back({std::move(key), true, std::move(value), 0});
    return *this;
  }
  Row& value(std::string key, double v) {
    fields_.push_back({std::move(key), false, {}, v});
    return *this;
  }

 private:
  friend class Reporter;
  struct Field {
    std::string key;
    bool is_label;
    std::string s;
    double n;
  };
  std::vector<Field> fields_;
};

class Reporter {
 public:
  Reporter(std::string name, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)) {}

  const std::string& name() const { return name_; }
  void set_unit(std::string unit) { unit_ = std::move(unit); }

  /// Appends an empty row; chain label()/value() on the reference.
  Row& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Headline scalar (speedups, ratios) — what bench_compare gates on.
  void derived(std::string key, double value) {
    derived_.emplace_back(std::move(key), value);
  }

  /// Writes the document; empty path means "BENCH_<name>.json" in the
  /// working directory. Returns false (with a stderr note) on I/O error.
  bool write(const std::string& path = "") const {
    std::string target = path.empty() ? "BENCH_" + name_ + ".json" : path;
    std::string doc = render();
    std::FILE* f = std::fopen(target.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", target.c_str());
      return false;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", target.c_str());
    return true;
  }

  /// The document as a string (used by tests).
  std::string render() const {
    std::string out;
    out += "{\n  \"schema_version\": 1,\n  \"benchmark\": ";
    detail::append_escaped(out, name_);
    out += ",\n  \"unit\": ";
    detail::append_escaped(out, unit_);
    out += ",\n  \"results\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += i == 0 ? "\n    {" : ",\n    {";
      const auto& fields = rows_[i].fields_;
      for (std::size_t j = 0; j < fields.size(); ++j) {
        if (j > 0) out += ", ";
        detail::append_escaped(out, fields[j].key);
        out += ": ";
        if (fields[j].is_label) {
          detail::append_escaped(out, fields[j].s);
        } else {
          detail::append_num(out, fields[j].n);
        }
      }
      out += "}";
    }
    out += rows_.empty() ? "],\n" : "\n  ],\n";
    out += "  \"derived\": {";
    for (std::size_t i = 0; i < derived_.size(); ++i) {
      out += i == 0 ? "\n    " : ",\n    ";
      detail::append_escaped(out, derived_[i].first);
      out += ": ";
      detail::append_num(out, derived_[i].second);
    }
    out += derived_.empty() ? "},\n" : "\n  },\n";
    out += "  \"metrics\": ";
    out += obs::export_json();  // "null" when no registry is attached
    out += "\n}\n";
    return out;
  }

 private:
  std::string name_;
  std::string unit_;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, double>> derived_;
};

namespace detail {
inline Reporter*& current_slot() {
  static Reporter* current = nullptr;
  return current;
}
}  // namespace detail

/// The open reporter, or nullptr before open() (used by the common.h
/// summary hook).
inline Reporter* current() { return detail::current_slot(); }

/// Opens the process-wide reporter (call FIRST in main(), before any
/// instrumented component is constructed) and attaches a metric registry
/// with a bounded trace ring. Set HERMES_OBS=off (or 0) to skip the
/// registry — the report still writes, with "metrics": null.
inline Reporter& open(std::string name, std::string unit = "") {
  static Reporter reporter{"", ""};
  static bool opened = false;
  if (!opened) {
    opened = true;
    reporter = Reporter{std::move(name), std::move(unit)};
    const char* env = std::getenv("HERMES_OBS");
    bool disabled =
        env && (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0);
    if (!disabled) {
      static obs::Registry registry(/*trace_capacity=*/4096);
      obs::attach(&registry);
    }
    detail::current_slot() = &reporter;
  }
  return reporter;
}

}  // namespace hermes::bench::report
