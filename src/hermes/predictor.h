// Shadow-table growth prediction (Section 5.1).
//
// The Rule Manager forecasts the next epoch's rule-arrival count from the
// recent history and triggers migration pre-emptively when the forecast
// says the shadow table would overflow. The paper explores three
// predictors — EWMA, Cubic Spline and ARMA — and two control-theoretic
// error-correction mechanisms — Slack (multiplicative inflation) and
// Deadzone (additive inflation) — and settles on Cubic Spline + Slack.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace hermes::core {

/// Forecasts the next value of a (non-negative) time series.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Predicts the value following `history` (oldest first). With an empty
  /// history returns 0; implementations must never return a negative or
  /// non-finite value.
  virtual double predict(std::span<const double> history) const = 0;

  virtual std::string_view name() const = 0;
};

/// Exponentially Weighted Moving Average: s_t = a*x_t + (1-a)*s_{t-1}.
class EwmaPredictor final : public Predictor {
 public:
  explicit EwmaPredictor(double alpha = 0.3);
  double predict(std::span<const double> history) const override;
  std::string_view name() const override { return "EWMA"; }

 private:
  double alpha_;
};

/// Natural cubic spline through the last `window` samples, extrapolated
/// one step past the end using the final polynomial segment.
class CubicSplinePredictor final : public Predictor {
 public:
  explicit CubicSplinePredictor(int window = 8);
  double predict(std::span<const double> history) const override;
  std::string_view name() const override { return "CubicSpline"; }

 private:
  int window_;
};

/// Autoregressive moving-average forecaster. The AR coefficients are fit
/// by Yule-Walker / Levinson-Durbin over the last `window` samples; the
/// MA component reduces to the innovation mean, which is ~0 for a
/// well-fit AR, so this is effectively ARMA(p, 0).
class ArmaPredictor final : public Predictor {
 public:
  explicit ArmaPredictor(int order = 3, int window = 32);
  double predict(std::span<const double> history) const override;
  std::string_view name() const override { return "ARMA"; }

 private:
  int order_;
  int window_;
};

/// Inflates a prediction to compensate for forecast error (Section 5.1).
class Corrector {
 public:
  virtual ~Corrector() = default;
  virtual double correct(double predicted) const = 0;
  virtual std::string_view name() const = 0;
};

/// Multiplicative inflation: a slack of 0.4 turns 1000 into 1400.
class SlackCorrector final : public Corrector {
 public:
  explicit SlackCorrector(double factor);
  double correct(double predicted) const override;
  std::string_view name() const override { return "Slack"; }
  double factor() const { return factor_; }

 private:
  double factor_;
};

/// Additive inflation: a deadzone of 100 turns 1000 into 1100.
class DeadzoneCorrector final : public Corrector {
 public:
  explicit DeadzoneCorrector(double constant);
  double correct(double predicted) const override;
  std::string_view name() const override { return "Deadzone"; }
  double constant() const { return constant_; }

 private:
  double constant_;
};

/// Bounded arrival-count history + predictor + corrector, packaged for the
/// Rule Manager. Counts are recorded per fixed epoch by the caller.
class GrowthEstimator {
 public:
  GrowthEstimator(std::unique_ptr<Predictor> predictor,
                  std::unique_ptr<Corrector> corrector,
                  std::size_t max_history = 256);

  /// Records the arrival count observed in the epoch that just closed.
  void observe(double count);

  /// Corrected forecast of next epoch's arrivals.
  double predicted_next() const;
  /// Uncorrected forecast (for error analysis).
  double raw_prediction() const;

  const Predictor& predictor() const { return *predictor_; }
  const Corrector& corrector() const { return *corrector_; }
  std::span<const double> history() const { return history_; }
  void reset() { history_.clear(); }

 private:
  std::unique_ptr<Predictor> predictor_;
  std::unique_ptr<Corrector> corrector_;
  std::size_t max_history_;
  std::vector<double> history_;

  // Forecast-accuracy aggregates (process-attached registry; detached
  // no-op handles otherwise). The error histogram records |raw forecast -
  // actual| in whole rules, not nanoseconds.
  obs::Counter obs_samples_ = obs::attached_counter("predictor.samples");
  obs::Histogram obs_abs_error_ =
      obs::attached_histogram("predictor.abs_error");
};

/// Factory helpers for the configuration matrix of Section 8.6.
std::unique_ptr<Predictor> make_predictor(std::string_view name);
std::unique_ptr<Corrector> make_corrector(std::string_view name,
                                          double parameter);

}  // namespace hermes::core
