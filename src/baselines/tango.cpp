#include "baselines/tango.h"

#include <algorithm>
#include <map>

namespace hermes::baselines {

TangoSwitch::TangoSwitch(const tcam::SwitchModel& model, int tcam_capacity,
                         Duration batch_window)
    : asic_(model, {tcam_capacity}), batch_window_(batch_window) {}

Time TangoSwitch::handle(Time now, const net::FlowMod& mod) {
  switch (mod.type) {
    case net::FlowModType::kInsert: {
      if (logical_.count(mod.rule.id)) {
        // Overwrite semantics: drop the old incarnation first.
        erase_logical(now, mod.rule.id);
      }
      if (pending_.empty()) window_deadline_ = now + batch_window_;
      pending_.push_back({now, mod.rule});
      return window_deadline_;
    }
    case net::FlowModType::kDelete:
      return erase_logical(now, mod.rule.id);
    case net::FlowModType::kModify: {
      // Splitting an aggregate to mutate one constituent is not worth the
      // bookkeeping Tango does not describe; delete + reinstall directly.
      Time t = erase_logical(now, mod.rule.id);
      net::Rule rule = mod.rule;
      logical_[rule.id] = rule;
      net::Rule phys = rule;
      phys.id = next_physical_id_++;
      physical_[phys.id] = PhysicalEntry{phys, {rule.id}};
      logical_to_physical_[rule.id] = phys.id;
      return insert_with_retry(std::max(t, now), phys);
    }
  }
  return now;
}

Time TangoSwitch::handle_batch(Time now, net::FlowModBatch& batch) {
  obs_batch_size_.record(batch.size());
  Time barrier = now;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Time done = handle(now, batch.mod(i));
    batch.complete(i, done);
    if (done > barrier) barrier = done;
  }
  return barrier;
}

void TangoSwitch::tick(Time now) {
  if (!pending_.empty() && now >= window_deadline_) flush(now);
}

Time TangoSwitch::flush(Time now) {
  if (pending_.empty()) return now;
  std::vector<Pending> batch;
  batch.swap(pending_);

  // Rewrite phase: aggregate within (priority, action) groups.
  std::map<std::pair<int, int>, std::vector<Pending>> groups;
  for (Pending& p : batch) {
    int action_key = p.rule.action.type == net::ActionType::kForward
                         ? p.rule.action.port
                         : -1 - static_cast<int>(p.rule.action.type);
    groups[{p.rule.priority, action_key}].push_back(std::move(p));
  }
  // Reorder phase: rewrite every group first, then push the whole
  // schedule (descending priority: no intra-batch shifting) to the
  // hardware as ONE update transaction — existing entries move at most
  // once.
  std::vector<net::Rule> schedule;
  std::vector<Pending> all;
  for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
    const net::Action action = it->second.front().rule.action;
    rewrite_group(it->first.first, action, it->second, schedule);
    for (Pending& p : it->second) all.push_back(std::move(p));
  }
  tcam::Asic::BatchResult result;
  Time last = asic_.submit_batch_insert(now, 0, schedule, &result);
  if (asic_.fault_plan() != nullptr) {
    // Immediately re-submit the suffix an injected failure cut off.
    std::size_t landed = static_cast<std::size_t>(result.inserted);
    for (int attempt = 1;
         attempt <= kFaultRetryLimit && landed < schedule.size(); ++attempt) {
      obs_retries_.inc();
      std::vector<net::Rule> rest(
          schedule.begin() + static_cast<std::ptrdiff_t>(landed),
          schedule.end());
      tcam::Asic::BatchResult r2;
      last = asic_.submit_batch_insert(last, 0, rest, &r2);
      landed += static_cast<std::size_t>(r2.inserted);
    }
  }
  for (const Pending& p : all) rit_samples_.push_back(last - p.arrival);
  return last;
}

Time TangoSwitch::insert_with_retry(Time now, const net::Rule& phys) {
  tcam::ApplyResult result;
  Time done = asic_.submit(now, 0, {net::FlowModType::kInsert, phys}, &result);
  if (!result.ok && asic_.fault_plan() != nullptr) {
    for (int attempt = 1; attempt <= kFaultRetryLimit && !result.ok;
         ++attempt) {
      obs_retries_.inc();
      done =
          asic_.submit(done, 0, {net::FlowModType::kInsert, phys}, &result);
    }
  }
  return done;
}

void TangoSwitch::rewrite_group(int priority, const net::Action& action,
                                const std::vector<Pending>& group,
                                std::vector<net::Rule>& batch) {
  std::vector<net::Prefix> matches;
  matches.reserve(group.size());
  for (const Pending& p : group) matches.push_back(p.rule.match);
  std::vector<net::Prefix> merged = net::merge_prefixes(std::move(matches));
  saved_ += group.size() - merged.size();

  std::vector<net::RuleId> phys_ids;
  phys_ids.reserve(merged.size());
  for (const net::Prefix& prefix : merged) {
    net::Rule phys{next_physical_id_++, priority, prefix, action};
    batch.push_back(phys);
    physical_.emplace(phys.id, PhysicalEntry{phys, {}});
    phys_ids.push_back(phys.id);
  }
  for (const Pending& p : group) {
    logical_[p.rule.id] = p.rule;
    for (net::RuleId pid : phys_ids) {
      if (physical_[pid].rule.match.contains(p.rule.match)) {
        physical_[pid].covers.insert(p.rule.id);
        logical_to_physical_[p.rule.id] = pid;
        break;
      }
    }
  }
}

Time TangoSwitch::erase_logical(Time now, net::RuleId id) {
  // The rule may still be waiting in the pending batch.
  auto pending_it =
      std::find_if(pending_.begin(), pending_.end(),
                   [&](const Pending& p) { return p.rule.id == id; });
  if (pending_it != pending_.end()) {
    pending_.erase(pending_it);
    return now;
  }
  auto log_it = logical_.find(id);
  if (log_it == logical_.end()) return now;
  net::RuleId pid = logical_to_physical_.at(id);
  PhysicalEntry& entry = physical_.at(pid);
  entry.covers.erase(id);
  logical_.erase(log_it);
  logical_to_physical_.erase(id);

  net::FlowMod del{net::FlowModType::kDelete,
                   net::Rule{pid, 0, {}, {}}};
  Time last = asic_.submit(now, 0, del);
  std::vector<net::RuleId> survivors(entry.covers.begin(),
                                     entry.covers.end());
  int priority = entry.rule.priority;
  net::Action action = entry.rule.action;
  physical_.erase(pid);

  if (!survivors.empty()) {
    // Reinstall a (re-merged) cover for the remaining constituents.
    std::vector<net::Prefix> matches;
    for (net::RuleId lid : survivors) {
      matches.push_back(logical_.at(lid).match);
      logical_to_physical_.erase(lid);
    }
    std::vector<net::Prefix> merged = net::merge_prefixes(std::move(matches));
    std::vector<net::RuleId> new_ids;
    for (const net::Prefix& prefix : merged) {
      net::Rule phys{next_physical_id_++, priority, prefix, action};
      last = insert_with_retry(now, phys);
      physical_.emplace(phys.id, PhysicalEntry{phys, {}});
      new_ids.push_back(phys.id);
    }
    for (net::RuleId lid : survivors) {
      for (net::RuleId npid : new_ids) {
        if (physical_[npid].rule.match.contains(logical_.at(lid).match)) {
          physical_[npid].covers.insert(lid);
          logical_to_physical_[lid] = npid;
          break;
        }
      }
    }
  }
  return last;
}

std::optional<net::Rule> TangoSwitch::lookup(net::Ipv4Address addr) {
  return asic_.lookup(addr);
}

const net::Rule* TangoSwitch::lookup_ptr(Time now, net::Ipv4Address addr) {
  return asic_.lookup_ptr(now, addr);
}

}  // namespace hermes::baselines
