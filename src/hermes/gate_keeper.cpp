#include "hermes/gate_keeper.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.h"

namespace hermes::core {

RulePredicate match_all() {
  return [](const net::Rule&) { return true; };
}

RulePredicate match_prefix_within(net::Prefix scope) {
  return [scope](const net::Rule& r) { return scope.contains(r.match); };
}

RulePredicate match_priority_at_least(int min_priority) {
  return [min_priority](const net::Rule& r) {
    return r.priority >= min_priority;
  };
}

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate), burst_(burst), tokens_(burst) {
  assert(rate >= 0 && burst >= 0);
}

void TokenBucket::refill(Time now) {
  if (now <= last_refill_) return;
  double elapsed_s = to_seconds(now - last_refill_);
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
  last_refill_ = now;
}

bool TokenBucket::try_take(Time now) {
  refill(now);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

int TokenBucket::try_take_n(Time now, int n) {
  if (n <= 0) return 0;
  refill(now);
  // Compare in double space before narrowing: floor(tokens_) exceeds
  // INT_MAX for large bursts, and casting such a value to int is UB. The
  // cast only happens on the branch where whole < n, so it always fits.
  double whole = std::floor(tokens_);
  int taken = whole < static_cast<double>(n) ? static_cast<int>(whole) : n;
  tokens_ -= static_cast<double>(taken);
  return taken;
}

double TokenBucket::available(Time now) const {
  double elapsed_s = now > last_refill_ ? to_seconds(now - last_refill_) : 0;
  return std::min(burst_, tokens_ + elapsed_s * rate_);
}

GateKeeper::GateKeeper(const HermesConfig& config, double token_rate,
                       double token_burst, obs::Registry* registry)
    : config_(&config), bucket_(token_rate, token_burst) {
  if (!registry) {
    owned_obs_ = std::make_unique<obs::Registry>();
    registry = owned_obs_.get();
  }
  obs_ = registry;
  guaranteed_ = obs_->counter("gate.guaranteed");
  unmatched_ = obs_->counter("gate.unmatched");
  over_rate_ = obs_->counter("gate.over_rate");
  lowest_priority_ = obs_->counter("gate.lowest_priority");
  shadow_full_ = obs_->counter("gate.shadow_full");
  tokens_ = obs_->gauge("gate.tokens");
  batch_admitted_ = obs_->histogram("gate.batch_admitted");
}

const GateKeeperStats& GateKeeper::stats() const {
  stats_view_.guaranteed = guaranteed_.value();
  stats_view_.unmatched = unmatched_.value();
  stats_view_.over_rate = over_rate_.value();
  stats_view_.lowest_priority = lowest_priority_.value();
  stats_view_.shadow_full = shadow_full_.value();
  return stats_view_;
}

Route GateKeeper::route_insert(Time now, const net::Rule& rule,
                               const RouteContext& ctx) {
  Route route;
  if (config_->predicate && !config_->predicate(rule)) {
    unmatched_.inc();
    route = Route::kMainUnmatched;
  } else if (config_->lowest_priority_optimization && !ctx.main_full &&
             (ctx.main_empty || rule.priority <= ctx.main_min_priority)) {
    // Section 4.2: a rule at or below the bottom of the main table appends
    // without shifting — inserting it into the shadow table would only
    // waste guaranteed capacity and maximize partitioning.
    lowest_priority_.inc();
    route = Route::kMainLowestPrio;
  } else if (ctx.pieces_needed > ctx.shadow_free) {
    // Shadow-capacity check BEFORE the token bucket: a shadow-full
    // rejection takes the main-table path and must not burn admitted-rate
    // budget — tokens pay only for shadow capacity actually consumed.
    // (Consuming first would silently under-admit subsequent guaranteed
    // inserts and skew the Equation 2 admitted-rate accounting.)
    shadow_full_.inc();
    route = Route::kMainShadowFull;
  } else if (!bucket_.try_take(now)) {
    over_rate_.inc();
    route = Route::kMainOverRate;
  } else {
    guaranteed_.inc();
    route = Route::kGuaranteed;
  }
  tokens_.set(
      static_cast<std::int64_t>(std::floor(bucket_.available(now))));
  obs::trace_event(
      obs::admission_event(now, static_cast<std::uint8_t>(route)));
  return route;
}

std::vector<Route> GateKeeper::route_insert_batch(
    Time now, std::span<const net::Rule> rules, const RouteContext& ctx) {
  if (rules.empty()) return {};  // no decision made, nothing recorded
  std::vector<Route> routes(rules.size(), Route::kMainUnmatched);
  // The token budget for the whole transaction is known up front: the
  // whole tokens the bucket holds at `now`, clamped to the batch size so
  // the double->int narrowing is always in range. Knowing the budget
  // before the capacity pass matters for correctness: a rule that routes
  // kMainOverRate must not hold shadow slots (the per-op path consumes
  // nothing for over-rate rules), otherwise later rules in the same batch
  // see kMainShadowFull where the sequential oracle admits them.
  double whole_tokens = std::floor(bucket_.available(now));
  int budget =
      whole_tokens < static_cast<double>(rules.size())
          ? static_cast<int>(std::max(whole_tokens, 0.0))
          : static_cast<int>(rules.size());
  // One pass in batch order against a running capacity view: a rule
  // becomes guaranteed only while both shadow slots AND token budget
  // remain, and only then claims ctx.pieces_needed slots. The split under
  // token shortage is deterministic: the FIRST `budget` eligible rules
  // stay guaranteed, the tail routes kMainOverRate without touching the
  // capacity view.
  int shadow_free = ctx.shadow_free;
  int taken = 0;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const net::Rule& rule = rules[i];
    if (config_->predicate && !config_->predicate(rule)) {
      routes[i] = Route::kMainUnmatched;
    } else if (config_->lowest_priority_optimization && !ctx.main_full &&
               (ctx.main_empty || rule.priority <= ctx.main_min_priority)) {
      routes[i] = Route::kMainLowestPrio;
    } else if (ctx.pieces_needed > shadow_free) {
      routes[i] = Route::kMainShadowFull;
    } else if (taken >= budget) {
      routes[i] = Route::kMainOverRate;
    } else {
      shadow_free -= ctx.pieces_needed;
      ++taken;
      routes[i] = Route::kGuaranteed;
    }
  }
  // ONE token-bucket debit for the transaction (the bucket is consulted
  // last in the per-op path too: rules rejected for other reasons burn no
  // budget). `taken <= budget <= floor(available)` so the debit succeeds
  // in full.
  int debited = bucket_.try_take_n(now, taken);
  assert(debited == taken);
  (void)debited;
  for (Route route : routes) {
    switch (route) {
      case Route::kGuaranteed: guaranteed_.inc(); break;
      case Route::kMainUnmatched: unmatched_.inc(); break;
      case Route::kMainOverRate: over_rate_.inc(); break;
      case Route::kMainLowestPrio: lowest_priority_.inc(); break;
      case Route::kMainShadowFull: shadow_full_.inc(); break;
    }
    obs::trace_event(
        obs::admission_event(now, static_cast<std::uint8_t>(route)));
  }
  tokens_.set(
      static_cast<std::int64_t>(std::floor(bucket_.available(now))));
  batch_admitted_.record(static_cast<std::uint64_t>(taken));
  return routes;
}

}  // namespace hermes::core
