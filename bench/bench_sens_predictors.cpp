// Section 8.6, "Sensitivity to Prediction Algorithms": the predictor x
// corrector configuration matrix on the MicroBench traces.
//
// Paper result to reproduce: Cubic Spline has the lowest prediction
// error, especially with Slack; "the combination of Cubic Spline and
// Slack reduced rule installation time by 80%-94% over existing
// alternatives (EWMA+Slack, EWMA+Deadzone, CubicSpline+Deadzone)".
// Hermes therefore defaults to Cubic Spline + 100% Slack.
//
// The regime where predictor quality matters is a RAMPING arrival rate:
// EWMA lags the ramp (systematic under-prediction -> late migration ->
// occupancy rides up -> slow, guarantee-threatening inserts), the natural
// cubic spline extrapolates it, ARMA sits in between.
#include <cstdio>
#include <string>

#include "baselines/hermes_backend.h"
#include "bench/common.h"
#include "tcam/switch_model.h"
#include "workloads/microbench.h"

namespace {

using namespace hermes;

struct Outcome {
  double mean_prediction_error = 0;  ///< |forecast - actual| per epoch
  double p99_op_ms = 0;
  double violation_pct = 0;
};

Outcome run(const std::string& predictor, const std::string& corrector,
            double param, const workloads::RuleTrace& trace) {
  core::HermesConfig config;
  config.guarantee = from_millis(5);
  config.predictor = predictor;
  config.corrector = corrector;
  config.corrector_param = param;
  config.lowest_priority_optimization = false;
  config.token_rate = 1e9;
  config.token_burst = 1e9;
  baselines::HermesBackend backend(tcam::pica8_p3290(), 32768, config);
  bench::replay(backend, trace);
  const auto& stats = backend.agent().stats();
  Outcome out;
  out.p99_op_ms =
      sim::percentile(bench::to_ms(backend.agent().op_latency_samples()),
                      0.99);
  out.violation_pct = 100.0 * static_cast<double>(stats.violations) /
                      static_cast<double>(stats.inserts);

  // Raw one-step prediction error of the predictor alone on the same
  // arrival series (corrector excluded: it compensates, not predicts).
  auto p = core::make_predictor(predictor);
  std::vector<double> series;
  {
    Duration epoch = config.epoch;
    std::size_t idx = 0;
    for (Time t = epoch;
         idx < trace.size(); t += epoch) {
      double count = 0;
      while (idx < trace.size() && trace[idx].time < t) {
        ++count;
        ++idx;
      }
      series.push_back(count);
    }
  }
  double err = 0;
  int samples = 0;
  for (std::size_t i = 8; i < series.size(); ++i) {
    double forecast = p->predict(
        std::span<const double>(series.data(), i));
    err += std::abs(forecast - series[i]);
    ++samples;
  }
  out.mean_prediction_error = samples ? err / samples : 0;
  return out;
}

// Two ramp cycles 100 -> 2000/s, deterministic spacing (clean per-epoch
// counts so trends dominate noise).
workloads::RuleTrace ramp_trace() {
  workloads::RuleTrace trace;
  workloads::MicroBenchConfig mb;
  mb.overlap_rate = 0.3;
  mb.priorities = workloads::PriorityPattern::kRandom;
  mb.poisson_arrivals = false;
  net::RuleId next_id = 1;
  Time offset = 0;
  const double rates[] = {100, 200,  400,  800,  1600, 2000,
                          100, 200,  400,  800,  1600, 2000};
  for (double rate : rates) {
    mb.rate = rate;
    mb.count = static_cast<int>(rate);  // one second per step
    mb.seed = static_cast<std::uint64_t>(rate);
    mb.first_id = next_id;
    auto chunk = workloads::microbench_trace(mb);
    for (auto& event : chunk) {
      event.time += offset;
      trace.push_back(event);
    }
    next_id += static_cast<net::RuleId>(mb.count);
    offset = trace.back().time + from_millis(1);
  }
  return trace;
}

}  // namespace

int main() {
  auto& rep = bench::report::open("sens_predictors", "ms");
  bench::header(
      "Section 8.6: sensitivity to prediction algorithms  [paper: text, "
      "80-94% improvement for CubicSpline+Slack]");
  auto trace = ramp_trace();
  std::printf("workload: %zu inserts, two 100->2000/s ramp cycles, 30%% "
              "overlap, Pica8 P-3290\n\n",
              trace.size());
  std::printf("  %-24s %14s %14s %12s\n", "configuration",
              "pred err/epoch", "p99 op (ms)", "violations");

  for (const char* predictor : {"EWMA", "CubicSpline", "ARMA"}) {
    for (const char* corrector : {"Slack", "Deadzone"}) {
      double param = std::string(corrector) == "Slack" ? 1.0 : 50.0;
      Outcome out = run(predictor, corrector, param, trace);
      std::printf("  %-24s %14.2f %14.3f %11.2f%%\n",
                  (std::string(predictor) + "+" + corrector).c_str(),
                  out.mean_prediction_error, out.p99_op_ms,
                  out.violation_pct);
      rep.row()
          .label("predictor", predictor)
          .label("corrector", corrector)
          .value("mean_prediction_error", out.mean_prediction_error)
          .value("p99_op_ms", out.p99_op_ms)
          .value("violation_pct", out.violation_pct);
    }
  }
  std::printf(
      "\n  paper shape: CubicSpline has the lowest prediction error and, "
      "with Slack, the best installation behavior\n");
  rep.write();
  return 0;
}
