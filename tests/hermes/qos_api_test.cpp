#include "hermes/qos_api.h"

#include <gtest/gtest.h>

#include "tcam/switch_model.h"

namespace hermes::core {
namespace {

using net::Prefix;

class QoSApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The Pica8's 108 KB Firebolt-3 TCAM holds ~4K entries (Table 1 probes
    // occupancies up to 2000); the Dell's 54 KB Trident+ about half that.
    manager_.register_switch(1, tcam::pica8_p3290(), 4000);
    manager_.register_switch(2, tcam::dell_8132f(), 2000);
  }
  QoSManager manager_;
};

TEST_F(QoSApiTest, CreateReturnsDescriptor) {
  auto desc = manager_.CreateTCAMQoS(1, from_millis(5), match_all());
  ASSERT_TRUE(desc.has_value());
  EXPECT_GT(desc->shadow_capacity, 0);
  EXPECT_GT(desc->max_burst_rate, 0);
  EXPECT_GT(desc->tcam_overhead, 0);
  EXPECT_LT(desc->tcam_overhead, 0.5);
  EXPECT_NE(manager_.agent(desc->id), nullptr);
  EXPECT_EQ(manager_.descriptor(desc->id)->switch_id, 1);
}

TEST_F(QoSApiTest, HeadlineConfigurationUnderFivePercent) {
  // The paper's headline: a 5 ms guarantee for <5% TCAM overhead.
  auto desc = manager_.CreateTCAMQoS(1, from_millis(5), match_all());
  ASSERT_TRUE(desc.has_value());
  EXPECT_LT(desc->tcam_overhead, 0.05);
}

TEST_F(QoSApiTest, CreateUnknownSwitchFails) {
  EXPECT_FALSE(manager_.CreateTCAMQoS(99, from_millis(5), match_all())
                   .has_value());
}

TEST_F(QoSApiTest, DoubleCreateFails) {
  ASSERT_TRUE(manager_.CreateTCAMQoS(1, from_millis(5), match_all()));
  EXPECT_FALSE(manager_.CreateTCAMQoS(1, from_millis(1), match_all()));
}

TEST_F(QoSApiTest, UnsatisfiableGuaranteeFails) {
  // A guarantee below the bare slot-write latency cannot be honored.
  EXPECT_FALSE(
      manager_.CreateTCAMQoS(1, from_micros(1), match_all()).has_value());
}

TEST_F(QoSApiTest, DeleteFreesTheSwitch) {
  auto desc = manager_.CreateTCAMQoS(1, from_millis(5), match_all());
  ASSERT_TRUE(desc);
  EXPECT_TRUE(manager_.DeleteQoS(desc->id));
  EXPECT_EQ(manager_.agent(desc->id), nullptr);
  EXPECT_FALSE(manager_.DeleteQoS(desc->id));  // idempotence: second fails
  // Switch can be configured again.
  EXPECT_TRUE(manager_.CreateTCAMQoS(1, from_millis(10), match_all()));
}

TEST_F(QoSApiTest, TighterGuaranteeCostsMore) {
  double at1 = manager_.QoSOverheads(1, from_millis(1), match_all());
  double at5 = manager_.QoSOverheads(1, from_millis(5), match_all());
  double at10 = manager_.QoSOverheads(1, from_millis(10), match_all());
  EXPECT_GT(at1, 0);
  EXPECT_LE(at1, at5);
  EXPECT_LE(at5, at10);
  // Overheads are what-if only: nothing got configured.
  EXPECT_TRUE(manager_.CreateTCAMQoS(1, from_millis(5), match_all()));
}

TEST_F(QoSApiTest, OverheadsNegativeWhenImpossible) {
  EXPECT_LT(manager_.QoSOverheads(99, from_millis(5), match_all()), 0);
  EXPECT_LT(manager_.QoSOverheads(1, from_micros(1), match_all()), 0);
}

TEST_F(QoSApiTest, ModQoSConfigResizesAndPreservesRules) {
  auto desc = manager_.CreateTCAMQoS(1, from_millis(5), match_all());
  ASSERT_TRUE(desc);
  HermesAgent* agent = manager_.agent(desc->id);
  agent->insert(0, net::Rule{7, 9, *Prefix::parse("10.0.0.0/8"),
                             net::forward_to(3)});
  int shadow_before = manager_.descriptor(desc->id)->shadow_capacity;
  ASSERT_TRUE(manager_.ModQoSConfig(desc->id, from_millis(1)));
  const QoSDescriptor* updated = manager_.descriptor(desc->id);
  EXPECT_LT(updated->shadow_capacity, shadow_before);
  EXPECT_EQ(updated->guarantee, from_millis(1));
  // Rule survived the re-carve.
  auto hit = manager_.agent(desc->id)->lookup(
      *net::Ipv4Address::parse("10.1.1.1"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action.port, 3);
}

TEST_F(QoSApiTest, ModQoSConfigRejectsImpossible) {
  auto desc = manager_.CreateTCAMQoS(1, from_millis(5), match_all());
  ASSERT_TRUE(desc);
  EXPECT_FALSE(manager_.ModQoSConfig(desc->id, from_micros(1)));
  EXPECT_FALSE(manager_.ModQoSConfig(999, from_millis(5)));
}

TEST_F(QoSApiTest, ModQoSMatchSwapsPredicate) {
  auto desc = manager_.CreateTCAMQoS(1, from_millis(5), match_all());
  ASSERT_TRUE(desc);
  HermesAgent* agent = manager_.agent(desc->id);
  agent->insert(0, net::Rule{7, 9, *Prefix::parse("10.0.0.0/8"),
                             net::forward_to(3)});
  ASSERT_TRUE(manager_.ModQoSMatch(
      desc->id, match_prefix_within(*Prefix::parse("192.168.0.0/16"))));
  agent = manager_.agent(desc->id);
  // (Replaying rule 7 through the new predicate already counted one
  // unmatched routing; measure the delta for the new insert.)
  std::uint64_t unmatched_before = agent->gate_keeper().stats().unmatched;
  // Out-of-scope rule goes to main (unmatched), in-scope gets guarantees.
  agent->insert(0, net::Rule{8, 10, *Prefix::parse("10.9.0.0/16"),
                             net::forward_to(4)});
  EXPECT_EQ(agent->gate_keeper().stats().unmatched, unmatched_before + 1);
  EXPECT_FALSE(manager_.ModQoSMatch(999, match_all()));
}

TEST_F(QoSApiTest, PerSwitchGuaranteesDiffer) {
  auto pica = manager_.CreateTCAMQoS(1, from_millis(5), match_all());
  auto dell = manager_.CreateTCAMQoS(2, from_millis(5), match_all());
  ASSERT_TRUE(pica && dell);
  // Different hardware => different shadow sizes for the same guarantee
  // (the Section 7 "Generality" requirement).
  EXPECT_NE(pica->shadow_capacity, dell->shadow_capacity);
}

}  // namespace
}  // namespace hermes::core
