#include "net/topology.h"

#include <gtest/gtest.h>

#include <queue>

namespace hermes::net {
namespace {

int reachable_count(const Topology& topo, NodeId start) {
  std::vector<char> seen(static_cast<std::size_t>(topo.node_count()), 0);
  std::queue<NodeId> q;
  q.push(start);
  seen[static_cast<std::size_t>(start)] = 1;
  int count = 0;
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    ++count;
    for (LinkId l : topo.links_of(u)) {
      NodeId v = topo.link(l).other(u);
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        q.push(v);
      }
    }
  }
  return count;
}

TEST(Topology, AddNodeAndLink) {
  Topology t;
  NodeId a = t.add_node(NodeKind::kSwitch, "a");
  NodeId b = t.add_node(NodeKind::kHost, "b");
  LinkId l = t.add_link(a, b, 1e9, 1e-3);
  EXPECT_EQ(t.node_count(), 2);
  EXPECT_EQ(t.link_count(), 1);
  EXPECT_EQ(t.link(l).other(a), b);
  EXPECT_EQ(t.link(l).other(b), a);
  EXPECT_EQ(t.find_link(a, b), l);
  EXPECT_EQ(t.find_link(b, a), l);
}

TEST(Topology, FindLinkMissing) {
  Topology t;
  NodeId a = t.add_node(NodeKind::kSwitch, "a");
  NodeId b = t.add_node(NodeKind::kSwitch, "b");
  EXPECT_EQ(t.find_link(a, b), kInvalidLink);
}

TEST(Topology, HostsAndSwitchesPartitionNodes) {
  Topology t = single_switch(5);
  EXPECT_EQ(t.hosts().size(), 5u);
  EXPECT_EQ(t.switches().size(), 1u);
  EXPECT_EQ(t.node_count(), 6);
}

// Fat-tree structural invariants [Al-Fares et al. 2008].
class FatTreeStructure : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeStructure, CountsMatchFormulas) {
  int k = GetParam();
  Topology t = fat_tree(k);
  int half = k / 2;
  EXPECT_EQ(static_cast<int>(t.hosts().size()), k * k * k / 4);
  EXPECT_EQ(static_cast<int>(t.switches().size()),
            half * half + k * k);  // core + (agg+edge) per pod
  // Links: core-agg k*(k/2)^2... per pod: half*half agg-core + half*half
  // agg-edge + half*half host links.
  EXPECT_EQ(t.link_count(), 3 * k * half * half);
}

TEST_P(FatTreeStructure, IsConnected) {
  int k = GetParam();
  Topology t = fat_tree(k);
  EXPECT_EQ(reachable_count(t, 0), t.node_count());
}

TEST_P(FatTreeStructure, HostsHaveDegreeOne) {
  Topology t = fat_tree(GetParam());
  for (NodeId h : t.hosts()) EXPECT_EQ(t.links_of(h).size(), 1u);
}

TEST_P(FatTreeStructure, SwitchDegreeIsK) {
  int k = GetParam();
  Topology t = fat_tree(k);
  for (NodeId s : t.switches()) {
    EXPECT_EQ(static_cast<int>(t.links_of(s).size()), k)
        << t.node(s).name;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreeStructure, ::testing::Values(4, 8, 16));

TEST(IspTopologies, AbileneShape) {
  Topology t = abilene();
  EXPECT_EQ(t.switches().size(), 12u);
  EXPECT_EQ(t.hosts().size(), 12u);   // one ingress host per PoP
  EXPECT_EQ(t.link_count(), 15 + 12); // trunks + host attachments
  EXPECT_EQ(reachable_count(t, 0), t.node_count());
}

TEST(IspTopologies, GeantShape) {
  Topology t = geant();
  EXPECT_EQ(t.switches().size(), 23u);
  EXPECT_EQ(t.link_count(), 37 + 23);
  EXPECT_EQ(reachable_count(t, 0), t.node_count());
}

TEST(IspTopologies, QuestShape) {
  Topology t = quest();
  EXPECT_EQ(t.switches().size(), 20u);
  EXPECT_EQ(t.link_count(), 31 + 20);
  EXPECT_EQ(reachable_count(t, 0), t.node_count());
}

TEST(PathLinks, ResolvesValidPath) {
  Topology t = single_switch(3);
  auto hosts = t.hosts();
  Path p{hosts[0], t.switches()[0], hosts[1]};
  auto links = path_links(t, p);
  ASSERT_EQ(links.size(), 2u);
}

TEST(PathLinks, EmptyOnBrokenPath) {
  Topology t = single_switch(3);
  auto hosts = t.hosts();
  Path p{hosts[0], hosts[1]};  // no direct host-host link
  EXPECT_TRUE(path_links(t, p).empty());
}

TEST(PathLinks, TrivialPathHasNoLinks) {
  Topology t = single_switch(1);
  EXPECT_TRUE(path_links(t, Path{0}).empty());
}

}  // namespace
}  // namespace hermes::net
