#include "tcam/tcam_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace hermes::tcam {
namespace {

using net::forward_to;
using net::Prefix;
using net::Rule;

Rule make_rule(net::RuleId id, int priority, std::string_view prefix,
               int port = 1) {
  return Rule{id, priority, *Prefix::parse(prefix), forward_to(port)};
}

TEST(TcamTable, StartsEmpty) {
  TcamTable t(8);
  EXPECT_EQ(t.capacity(), 8);
  EXPECT_EQ(t.occupancy(), 0);
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.full());
}

TEST(TcamTable, InsertIntoEmptyHasNoShifts) {
  TcamTable t(8);
  auto r = t.insert(make_rule(1, 10, "10.0.0.0/8"));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.shifts, 0);
  EXPECT_EQ(t.occupancy(), 1);
}

TEST(TcamTable, AppendingLowestPriorityNeverShifts) {
  TcamTable t(16);
  for (int p = 16; p >= 1; --p) {
    auto r = t.insert(make_rule(static_cast<net::RuleId>(p), p,
                                "10.0.0.0/8"));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.shifts, 0) << "prio " << p;
  }
  EXPECT_TRUE(t.check_invariant());
}

TEST(TcamTable, InsertingHighestIntoPackedTopShifts) {
  TcamTable t(16);
  // Fill priorities 1..8 ascending (each lands on top, shifting the rest).
  int total_shifts = 0;
  for (int p = 1; p <= 8; ++p) {
    auto r = t.insert(make_rule(static_cast<net::RuleId>(p), p,
                                "10.0.0.0/8"));
    EXPECT_TRUE(r.ok);
    total_shifts += r.shifts;
  }
  // Ascending insertion into a compact region shifts ~k entries at step k.
  EXPECT_EQ(total_shifts, 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
  EXPECT_TRUE(t.check_invariant());
}

TEST(TcamTable, EqualPrioritiesNeverShift) {
  TcamTable t(32);
  for (net::RuleId id = 1; id <= 20; ++id) {
    auto r = t.insert(make_rule(id, 5, "10.0.0.0/8"));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.shifts, 0);
  }
}

TEST(TcamTable, InsertFailsWhenFull) {
  TcamTable t(2);
  EXPECT_TRUE(t.insert(make_rule(1, 1, "10.0.0.0/8")).ok);
  EXPECT_TRUE(t.insert(make_rule(2, 2, "10.0.0.0/8")).ok);
  auto r = t.insert(make_rule(3, 3, "10.0.0.0/8"));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(t.stats().failed_inserts, 1u);
}

TEST(TcamTable, InsertRejectsDuplicateId) {
  TcamTable t(4);
  EXPECT_TRUE(t.insert(make_rule(7, 1, "10.0.0.0/8")).ok);
  EXPECT_FALSE(t.insert(make_rule(7, 2, "11.0.0.0/8")).ok);
  EXPECT_EQ(t.occupancy(), 1);
}

TEST(TcamTable, DeletionDoesNotMakeLaterInsertsCheaper) {
  // The empirically-measured behavior (Table 1): insert cost tracks
  // occupancy; deletions compact in the background, so a later mid-table
  // insert still shifts everything below its sorted position.
  TcamTable t(8);
  for (int p = 8; p >= 1; --p)
    ASSERT_TRUE(
        t.insert(make_rule(static_cast<net::RuleId>(p), p, "10.0.0.0/8")).ok);
  EXPECT_TRUE(t.erase(4).ok);
  EXPECT_EQ(t.occupancy(), 7);
  // Insert at priority 4: entries 3, 2, 1 sit below it and must move.
  auto r = t.insert(make_rule(100, 4, "11.0.0.0/8"));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.shifts, 3);
  EXPECT_TRUE(t.check_invariant());
}

TEST(TcamTable, MidTableInsertShiftsEverythingBelow) {
  TcamTable t(8);
  for (int p = 8; p >= 1; --p)
    ASSERT_TRUE(
        t.insert(make_rule(static_cast<net::RuleId>(p), p, "10.0.0.0/8")).ok);
  ASSERT_TRUE(t.erase(2).ok);
  // Insert priority 6: below it sit 5, 4, 3, 1 => 4 shifts.
  auto r = t.insert(make_rule(60, 6, "11.0.0.0/8"));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.shifts, 4);
  EXPECT_TRUE(t.check_invariant());
  EXPECT_TRUE(t.full());
}

TEST(TcamTable, EqualPriorityInsertGoesAfterItsBand) {
  TcamTable t(8);
  ASSERT_TRUE(t.insert(make_rule(1, 5, "10.0.0.0/8")).ok);
  ASSERT_TRUE(t.insert(make_rule(2, 3, "11.0.0.0/8")).ok);
  // Equal to the top band: lands after rule 1, shifting only rule 2.
  auto r = t.insert(make_rule(3, 5, "12.0.0.0/8"));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.shifts, 1);
  auto rules = t.rules();
  EXPECT_EQ(rules[0].id, 1u);
  EXPECT_EQ(rules[1].id, 3u);
  EXPECT_EQ(rules[2].id, 2u);
}

TEST(TcamTable, DeleteMissingFails) {
  TcamTable t(4);
  EXPECT_FALSE(t.erase(9).ok);
}

TEST(TcamTable, LookupReturnsHighestPriorityMatch) {
  TcamTable t(8);
  ASSERT_TRUE(t.insert(make_rule(1, 10, "192.168.1.0/26", 1)).ok);
  ASSERT_TRUE(t.insert(make_rule(2, 5, "192.168.1.0/24", 2)).ok);
  auto hit = t.lookup(*net::Ipv4Address::parse("192.168.1.5"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action.port, 1);  // the /26 wins by priority
  hit = t.lookup(*net::Ipv4Address::parse("192.168.1.200"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action.port, 2);  // only the /24 matches
  EXPECT_FALSE(
      t.lookup(*net::Ipv4Address::parse("8.8.8.8")).has_value());
}

TEST(TcamTable, LookupOrderIndependentOfInsertionOrder) {
  // Whatever order overlapping rules arrive in, physical order must yield
  // highest-priority-wins.
  std::vector<Rule> rules = {make_rule(1, 3, "10.0.0.0/8", 1),
                             make_rule(2, 7, "10.1.0.0/16", 2),
                             make_rule(3, 5, "10.1.2.0/24", 3)};
  std::sort(rules.begin(), rules.end(),
            [](const Rule& a, const Rule& b) { return a.id < b.id; });
  do {
    TcamTable t(8);
    for (const Rule& r : rules) ASSERT_TRUE(t.insert(r).ok);
    auto hit = t.peek(*net::Ipv4Address::parse("10.1.2.3"));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->action.port, 2);  // priority 7 rule
    EXPECT_TRUE(t.check_invariant());
  } while (std::next_permutation(
      rules.begin(), rules.end(),
      [](const Rule& a, const Rule& b) { return a.id < b.id; }));
}

TEST(TcamTable, ModifyActionInPlace) {
  TcamTable t(4);
  ASSERT_TRUE(t.insert(make_rule(1, 1, "10.0.0.0/8", 1)).ok);
  auto r = t.modify_action(1, forward_to(9));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.shifts, 0);
  EXPECT_EQ(t.find(1)->action.port, 9);
  EXPECT_FALSE(t.modify_action(99, forward_to(1)).ok);
}

TEST(TcamTable, ModifyMatchInPlace) {
  TcamTable t(4);
  ASSERT_TRUE(t.insert(make_rule(1, 1, "10.0.0.0/8")).ok);
  EXPECT_TRUE(t.modify_match(1, *Prefix::parse("11.0.0.0/8")).ok);
  EXPECT_EQ(t.find(1)->match.to_string(), "11.0.0.0/8");
  EXPECT_FALSE(t.modify_match(99, Prefix::any()).ok);
}

TEST(TcamTable, RulesReturnsPhysicalOrder) {
  TcamTable t(8);
  ASSERT_TRUE(t.insert(make_rule(1, 1, "10.0.0.0/8")).ok);
  ASSERT_TRUE(t.insert(make_rule(2, 9, "11.0.0.0/8")).ok);
  ASSERT_TRUE(t.insert(make_rule(3, 5, "12.0.0.0/8")).ok);
  auto rules = t.rules();
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].priority, 9);
  EXPECT_EQ(rules[1].priority, 5);
  EXPECT_EQ(rules[2].priority, 1);
}

TEST(TcamTable, ClearEmptiesEverything) {
  TcamTable t(4);
  ASSERT_TRUE(t.insert(make_rule(1, 1, "10.0.0.0/8")).ok);
  ASSERT_TRUE(t.insert(make_rule(2, 2, "11.0.0.0/8")).ok);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.contains(1));
}

TEST(TcamTable, StatsAccumulate) {
  TcamTable t(4);
  t.insert(make_rule(1, 2, "10.0.0.0/8"));
  t.insert(make_rule(2, 3, "11.0.0.0/8"));  // shifts rule 1 down
  t.erase(1);
  t.modify_action(2, forward_to(5));
  t.lookup(*net::Ipv4Address::parse("11.1.1.1"));
  const TableStats& s = t.stats();
  EXPECT_EQ(s.inserts, 2u);
  EXPECT_EQ(s.deletes, 1u);
  EXPECT_EQ(s.modifies, 1u);
  EXPECT_EQ(s.lookups, 1u);
  EXPECT_EQ(s.total_shifts, 1u);
}

// Property: under random mixed workloads the invariant always holds, the
// occupancy bookkeeping is exact, and lookups equal a reference
// highest-priority scan.
class TcamTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcamTableProperty, RandomOpsPreserveInvariantAndSemantics) {
  std::mt19937_64 rng(GetParam());
  TcamTable t(64);
  std::vector<Rule> reference;  // rules currently installed
  net::RuleId next_id = 1;

  for (int step = 0; step < 600; ++step) {
    int op = static_cast<int>(rng() % 3);
    if (op == 0 || reference.empty()) {
      Rule r{next_id++, static_cast<int>(rng() % 16),
             Prefix(net::Ipv4Address(static_cast<std::uint32_t>(rng())),
                    static_cast<int>(rng() % 25)),
             forward_to(static_cast<int>(rng() % 8))};
      bool ok = t.insert(r).ok;
      EXPECT_EQ(ok, reference.size() < 64);
      if (ok) reference.push_back(r);
    } else if (op == 1) {
      std::size_t victim = rng() % reference.size();
      EXPECT_TRUE(t.erase(reference[victim].id).ok);
      reference.erase(reference.begin() +
                      static_cast<std::ptrdiff_t>(victim));
    } else {
      std::size_t victim = rng() % reference.size();
      net::Action a = forward_to(static_cast<int>(rng() % 8));
      EXPECT_TRUE(t.modify_action(reference[victim].id, a).ok);
      reference[victim].action = a;
    }
    ASSERT_TRUE(t.check_invariant());
    ASSERT_EQ(t.occupancy(), static_cast<int>(reference.size()));

    // Compare a sampled lookup against highest-priority-wins reference.
    net::Ipv4Address probe(static_cast<std::uint32_t>(rng()));
    const Rule* best = nullptr;
    for (const Rule& r : reference) {
      if (!r.match.contains(probe)) continue;
      if (!best || r.priority > best->priority) best = &r;
    }
    auto got = t.peek(probe);
    if (!best) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      // With equal priorities and overlapping matches the TCAM may return
      // either; require only equal priority.
      EXPECT_EQ(got->priority, best->priority);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcamTableProperty,
                         ::testing::Values(1, 17, 23, 42, 99));

// Property: the id index agrees with the priority-ordered array across
// every mutation path. Exercises all five mutators (insert, erase,
// modify_action, modify_match, clear) in random interleavings and checks
// contains/find/find_ptr against a reference map — including misses and
// ids that were installed then erased (stale-index bait).
class TcamTableIndexProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TcamTableIndexProperty, IndexMatchesArrayUnderRandomMutations) {
  std::mt19937_64 rng(GetParam());
  TcamTable t(48);
  std::vector<Rule> reference;
  std::vector<net::RuleId> erased;  // ids the index must have forgotten
  net::RuleId next_id = 1;

  for (int step = 0; step < 800; ++step) {
    int op = static_cast<int>(rng() % 5);
    if (op == 0 || reference.empty()) {
      // Narrow priority range on purpose: long equal-priority runs stress
      // the within-run id scan.
      Rule r{next_id++, static_cast<int>(rng() % 6),
             Prefix(net::Ipv4Address(static_cast<std::uint32_t>(rng())),
                    static_cast<int>(rng() % 25)),
             forward_to(static_cast<int>(rng() % 8))};
      if (t.insert(r).ok) reference.push_back(r);
    } else if (op == 1) {
      std::size_t victim = rng() % reference.size();
      ASSERT_TRUE(t.erase(reference[victim].id).ok);
      erased.push_back(reference[victim].id);
      reference.erase(reference.begin() +
                      static_cast<std::ptrdiff_t>(victim));
    } else if (op == 2) {
      std::size_t victim = rng() % reference.size();
      net::Action a = forward_to(static_cast<int>(rng() % 8));
      ASSERT_TRUE(t.modify_action(reference[victim].id, a).ok);
      reference[victim].action = a;
    } else if (op == 3) {
      std::size_t victim = rng() % reference.size();
      Prefix m(net::Ipv4Address(static_cast<std::uint32_t>(rng())),
               static_cast<int>(rng() % 25));
      ASSERT_TRUE(t.modify_match(reference[victim].id, m).ok);
      reference[victim].match = m;
    } else if (step % 97 == 0) {  // rare full reset
      t.clear();
      for (const Rule& r : reference) erased.push_back(r.id);
      reference.clear();
    }
    ASSERT_TRUE(t.check_invariant()) << "step " << step;

    // Every resident id resolves identically through all three accessors.
    for (const Rule& r : reference) {
      EXPECT_TRUE(t.contains(r.id));
      const net::Rule* p = t.find_ptr(r.id);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(*p, r);
      auto copy = t.find(r.id);
      ASSERT_TRUE(copy.has_value());
      EXPECT_EQ(*copy, r);
    }
    // Erased and never-installed ids must miss.
    if (!erased.empty()) {
      net::RuleId gone = erased[rng() % erased.size()];
      EXPECT_FALSE(t.contains(gone));
      EXPECT_EQ(t.find_ptr(gone), nullptr);
      EXPECT_FALSE(t.find(gone).has_value());
    }
    EXPECT_FALSE(t.contains(next_id));

    // rules_view is the live array: same size and physical order as
    // rules(), non-increasing priority.
    const std::vector<Rule>& view = t.rules_view();
    ASSERT_EQ(view.size(), reference.size());
    EXPECT_EQ(view, t.rules());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcamTableIndexProperty,
                         ::testing::Values(3, 29, 71));

}  // namespace
}  // namespace hermes::tcam
