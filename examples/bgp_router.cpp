// BGP router example: the Sections 2.3 / 8.4 scenario.
//
// Feeds a synthetic BGPStream-style update feed through a RIB with
// best-path selection; the resulting FIB changes go to the TCAM of (a) a
// plain router and (b) a Hermes-managed router with a 5 ms guarantee.
//
//   $ ./bgp_router [seconds]
#include <cstdio>
#include <cstdlib>

#include "baselines/hermes_backend.h"
#include "baselines/plain_switch.h"
#include "sim/stats.h"
#include "tcam/switch_model.h"
#include "workloads/bgp.h"

using namespace hermes;

int main(int argc, char** argv) {
  double seconds = argc > 1 ? std::atof(argv[1]) : 30.0;
  std::printf("=== BGP router with Hermes (Equinix-Chicago-style feed, "
              "%.0f s) ===\n\n",
              seconds);

  workloads::BgpFeedConfig feed_config = workloads::equinix_chicago();
  feed_config.duration_s = seconds;
  auto feed = workloads::bgp_feed(feed_config);

  // RIB -> FIB: only best-path changes reach the TCAM.
  workloads::Rib rib;
  workloads::RuleTrace fib;
  for (const auto& update : feed)
    if (auto mod = rib.apply(update)) fib.push_back({update.time, *mod});
  std::printf("BGP updates: %zu -> FIB changes: %zu (%.0f%% of RIB churn "
              "percolates; FIB holds %zu prefixes)\n\n",
              feed.size(), fib.size(), 100 * rib.fib_percolation_rate(),
              rib.fib_size());

  auto replay = [&](baselines::SwitchBackend& sw) {
    Time tick = from_millis(1);
    for (const auto& event : fib) {
      while (tick <= event.time) {
        sw.tick(tick);
        tick += from_millis(1);
      }
      sw.handle(event.time, event.mod);
    }
    std::vector<double> ms;
    for (Duration d : sw.rit_samples()) ms.push_back(to_millis(d));
    return ms;
  };

  baselines::PlainSwitch plain(tcam::pica8_p3290(), 32768);
  auto plain_ms = replay(plain);
  std::printf("plain router:  %s\n",
              sim::format_summary("FIB install", sim::summarize(plain_ms),
                                  "ms")
                  .c_str());

  core::HermesConfig config;
  config.guarantee = from_millis(5);
  baselines::HermesBackend hermes_router(tcam::pica8_p3290(), 32768,
                                         config);
  auto hermes_ms = replay(hermes_router);
  std::printf("Hermes router: %s\n",
              sim::format_summary("FIB install", sim::summarize(hermes_ms),
                                  "ms")
                  .c_str());
  const auto& stats = hermes_router.agent().stats();
  std::printf("\nHermes internals: %llu guaranteed, %llu straight to main "
              "(lowest-priority appends), %llu migrations, %llu "
              "violations\n",
              static_cast<unsigned long long>(stats.guaranteed_inserts),
              static_cast<unsigned long long>(stats.main_inserts),
              static_cast<unsigned long long>(stats.migrations),
              static_cast<unsigned long long>(stats.violations));
  std::printf("note: deletions and next-hop modifies are cheap on both "
              "(Section 2.1); the win concentrates in the bursty insert "
              "tail (>1000 upd/s episodes)\n");
  return 0;
}
