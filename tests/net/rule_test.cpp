#include "net/rule.h"

#include <gtest/gtest.h>

namespace hermes::net {
namespace {

TEST(Rule, SameBehaviorIgnoresId) {
  Rule a{1, 10, *Prefix::parse("10.0.0.0/8"), forward_to(3)};
  Rule b{2, 10, *Prefix::parse("10.0.0.0/8"), forward_to(3)};
  EXPECT_TRUE(a.same_behavior(b));
  EXPECT_NE(a, b);
}

TEST(Rule, SameBehaviorDetectsDifferences) {
  Rule base{1, 10, *Prefix::parse("10.0.0.0/8"), forward_to(3)};
  Rule diff_prio = base;
  diff_prio.priority = 11;
  Rule diff_match = base;
  diff_match.match = *Prefix::parse("11.0.0.0/8");
  Rule diff_action = base;
  diff_action.action = forward_to(4);
  EXPECT_FALSE(base.same_behavior(diff_prio));
  EXPECT_FALSE(base.same_behavior(diff_match));
  EXPECT_FALSE(base.same_behavior(diff_action));
}

TEST(Action, ToStringCoversAllTypes) {
  EXPECT_EQ(to_string(forward_to(7)), "fwd(7)");
  EXPECT_EQ(to_string(Action{ActionType::kDrop, -1}), "drop");
  EXPECT_EQ(to_string(Action{ActionType::kToController, -1}),
            "to-controller");
  EXPECT_EQ(to_string(Action{ActionType::kGotoNextTable, -1}),
            "goto-next-table");
}

TEST(Rule, ToStringIsReadable) {
  Rule r{42, 5, *Prefix::parse("192.168.0.0/16"), forward_to(1)};
  EXPECT_EQ(to_string(r), "#42 prio=5 192.168.0.0/16 -> fwd(1)");
}

TEST(FlowMod, ToStringShowsVerb) {
  Rule r{1, 0, Prefix::any(), forward_to(0)};
  EXPECT_TRUE(to_string(FlowMod{FlowModType::kInsert, r}).starts_with("insert"));
  EXPECT_TRUE(to_string(FlowMod{FlowModType::kDelete, r}).starts_with("delete"));
  EXPECT_TRUE(to_string(FlowMod{FlowModType::kModify, r}).starts_with("modify"));
}

}  // namespace
}  // namespace hermes::net
