// Eviction-heavy churn differential test for the LookupEngine: a
// near-capacity TcamTable under sustained insert/erase/modify cycling —
// the access pattern a cache tier's promote/demote loop produces — which
// piles up tombstones and forces rehashes in the tuple-space cells. The
// engine must stay bit-identical to the frozen linear scan (peek) and
// structurally sound (check_invariant) throughout.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "tcam/tcam_table.h"

namespace hermes::tcam {
namespace {

using net::Prefix;
using net::Rule;

std::uint64_t next_state(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545F4914F6CDD1Dull;
}

Rule churn_rule(std::uint64_t& state, net::RuleId id) {
  static constexpr int kLengths[] = {16, 24, 28, 32, 32};
  int length = kLengths[next_state(state) % 5];
  // A narrow universe so masked keys collide across prefix lengths and
  // erase/insert cycles land in already-tombstoned cells.
  std::uint32_t addr =
      0x0A000000u |
      (static_cast<std::uint32_t>(next_state(state)) & 0x00000FFFu);
  int priority = static_cast<int>(next_state(state) % 6);
  return Rule{id, priority, Prefix(net::Ipv4Address(addr), length),
              net::forward_to(static_cast<int>(next_state(state) % 8))};
}

void expect_agrees_with_peek(TcamTable& table, std::uint64_t& state,
                             int probes) {
  for (int i = 0; i < probes; ++i) {
    auto addr = net::Ipv4Address(
        0x0A000000u |
        (static_cast<std::uint32_t>(next_state(state)) & 0x00000FFFu));
    const net::Rule* fast = table.lookup_ptr(addr);
    std::optional<net::Rule> slow = table.peek(addr);
    if (!slow.has_value()) {
      ASSERT_EQ(fast, nullptr) << addr.to_string();
    } else {
      ASSERT_NE(fast, nullptr) << addr.to_string();
      ASSERT_EQ(fast->id, slow->id) << addr.to_string();
    }
  }
}

TEST(LookupEngineChurn, EvictionHeavyCyclingStaysExact) {
  constexpr int kCapacity = 64;
  TcamTable table(kCapacity);
  std::uint64_t state = 0xFEEDFACE;
  net::RuleId next_id = 1;
  std::vector<net::RuleId> resident;

  // Fill to capacity.
  while (!table.full()) {
    Rule r = churn_rule(state, next_id);
    if (table.insert(r).ok) {
      resident.push_back(next_id);
      ++next_id;
    } else {
      ++next_id;  // duplicate-id misdraw; move on
    }
  }

  for (int round = 0; round < 400; ++round) {
    // Evict a random resident, admit a fresh rule — the cache tier's
    // steady state. Every few rounds, rewrite a survivor's action or
    // match in place (tombstone-free mutations must coexist with the
    // tombstoned ones).
    std::size_t vi = next_state(state) % resident.size();
    ASSERT_TRUE(table.erase(resident[vi]).ok);
    resident.erase(resident.begin() + static_cast<std::ptrdiff_t>(vi));

    Rule fresh = churn_rule(state, next_id++);
    if (table.insert(fresh).ok) resident.push_back(fresh.id);

    if (round % 5 == 0 && !resident.empty()) {
      net::RuleId mid = resident[next_state(state) % resident.size()];
      if (next_state(state) % 2 == 0) {
        table.modify_action(
            mid, net::forward_to(static_cast<int>(next_state(state) % 8)));
      } else {
        std::uint32_t addr =
            0x0A000000u |
            (static_cast<std::uint32_t>(next_state(state)) & 0x00000FFFu);
        table.modify_match(mid, Prefix(net::Ipv4Address(addr), 32));
      }
    }

    if (round % 16 == 0) {
      ASSERT_TRUE(table.engine().check_invariant()) << "round " << round;
      ASSERT_TRUE(table.check_invariant()) << "round " << round;
      expect_agrees_with_peek(table, state, 64);
    }
  }
  EXPECT_TRUE(table.engine().check_invariant());
  EXPECT_TRUE(table.check_invariant());
  expect_agrees_with_peek(table, state, 512);
  EXPECT_EQ(table.occupancy(), static_cast<int>(resident.size()));
}

TEST(LookupEngineChurn, DrainAndRefillSweepsTombstones) {
  constexpr int kCapacity = 48;
  TcamTable table(kCapacity);
  std::uint64_t state = 0xB00B1E5;
  net::RuleId next_id = 1;

  for (int cycle = 0; cycle < 12; ++cycle) {
    // Refill to capacity...
    std::vector<net::RuleId> ids;
    while (!table.full()) {
      Rule r = churn_rule(state, next_id++);
      if (table.insert(r).ok) ids.push_back(r.id);
    }
    expect_agrees_with_peek(table, state, 64);
    // ...then drain completely, leaving a cell array full of tombstones
    // for the next cycle's inserts to probe through and rehash away.
    for (net::RuleId id : ids) ASSERT_TRUE(table.erase(id).ok);
    ASSERT_TRUE(table.empty());
    ASSERT_TRUE(table.engine().check_invariant()) << "cycle " << cycle;
  }
  EXPECT_TRUE(table.check_invariant());
}

}  // namespace
}  // namespace hermes::tcam
