// Edge cases of the Hermes agent's correctness machinery: dependency
// chains across un-partitioning, deletion of migrated partitioned rules,
// redundant-rule materialization chains, and the Equation 2 admission
// contract.
#include <gtest/gtest.h>

#include <random>

#include "hermes/hermes_agent.h"
#include "tcam/switch_model.h"

namespace hermes::core {
namespace {

using net::Prefix;
using net::Rule;

Rule make_rule(net::RuleId id, int priority, std::string_view prefix,
               int port) {
  return Rule{id, priority, *Prefix::parse(prefix), net::forward_to(port)};
}

HermesConfig test_config() {
  HermesConfig config;
  config.guarantee = from_millis(5);
  config.token_rate = 1e9;
  config.token_burst = 1e9;
  config.lowest_priority_optimization = false;
  return config;
}

int port_at(HermesAgent& agent, std::string_view addr) {
  auto hit = agent.lookup(*net::Ipv4Address::parse(addr));
  return hit ? hit->action.port : -1;
}

TEST(AgentEdge, UnpartitionChainAcrossPriorityLevels) {
  // Three nested rules A (/26, prio 30) > B (/24, prio 20) > C (/16,
  // prio 10). B is cut against A; C is cut against both. Deleting A must
  // restore B's full /24 while keeping C cut against B; deleting B must
  // then restore C completely.
  HermesAgent agent(tcam::pica8_p3290(), 4000, test_config());
  agent.insert(0, make_rule(1, 30, "192.168.1.0/26", 1));
  agent.migrate_now(0);
  agent.insert(0, make_rule(2, 20, "192.168.1.0/24", 2));
  agent.migrate_now(0);
  agent.insert(0, make_rule(3, 10, "192.168.0.0/16", 3));
  agent.migrate_now(0);

  EXPECT_EQ(port_at(agent, "192.168.1.5"), 1);     // A
  EXPECT_EQ(port_at(agent, "192.168.1.200"), 2);   // B's remainder
  EXPECT_EQ(port_at(agent, "192.168.7.1"), 3);     // C's remainder

  agent.erase(from_millis(1), 1);  // delete A
  EXPECT_EQ(port_at(agent, "192.168.1.5"), 2);     // B reclaims the /26
  EXPECT_EQ(port_at(agent, "192.168.7.1"), 3);
  EXPECT_EQ(port_at(agent, "192.168.1.200"), 2);

  agent.erase(from_millis(2), 2);  // delete B
  EXPECT_EQ(port_at(agent, "192.168.1.5"), 3);     // C reclaims everything
  EXPECT_EQ(port_at(agent, "192.168.1.200"), 3);
  EXPECT_EQ(port_at(agent, "10.1.1.1"), -1);

  agent.erase(from_millis(3), 3);
  EXPECT_EQ(port_at(agent, "192.168.1.5"), -1);
  EXPECT_EQ(agent.shadow_occupancy() + agent.main_occupancy(), 0);
}

TEST(AgentEdge, DeletePartitionedRuleAfterMigration) {
  // A rule partitioned in the shadow, migrated (pieces now in main), then
  // deleted: all pieces must disappear from the main table.
  HermesAgent agent(tcam::pica8_p3290(), 4000, test_config());
  agent.insert(0, make_rule(1, 30, "10.0.0.0/26", 1));
  agent.migrate_now(0);
  agent.insert(0, make_rule(2, 10, "10.0.0.0/24", 2));  // partitioned
  agent.migrate_now(from_millis(1));                    // pieces -> main
  ASSERT_EQ(agent.shadow_occupancy(), 0);
  ASSERT_GT(agent.main_occupancy(), 2);  // blocker + >1 pieces
  agent.erase(from_millis(2), 2);
  EXPECT_EQ(agent.main_occupancy(), 1);  // only the blocker remains
  EXPECT_EQ(port_at(agent, "10.0.0.200"), -1);
  EXPECT_EQ(port_at(agent, "10.0.0.5"), 1);
}

TEST(AgentEdge, RedundantRuleMaterializesAndCanBeDeleted) {
  HermesAgent agent(tcam::pica8_p3290(), 4000, test_config());
  agent.insert(0, make_rule(1, 30, "10.0.0.0/8", 1));
  agent.migrate_now(0);
  agent.insert(0, make_rule(2, 10, "10.1.0.0/16", 2));  // redundant
  EXPECT_EQ(agent.stats().redundant_inserts, 1u);
  // Deleting the still-immaterial redundant rule must be a clean no-op
  // on the tables but remove the logical record.
  agent.erase(from_millis(1), 2);
  EXPECT_FALSE(agent.store().contains(2));
  // Re-insert, materialize by deleting the blocker, then delete it.
  agent.insert(from_millis(2), make_rule(3, 10, "10.1.0.0/16", 3));
  agent.erase(from_millis(3), 1);
  EXPECT_EQ(port_at(agent, "10.1.2.3"), 3);
  agent.erase(from_millis(4), 3);
  EXPECT_EQ(port_at(agent, "10.1.2.3"), -1);
  EXPECT_EQ(agent.shadow_occupancy() + agent.main_occupancy(), 0);
}

TEST(AgentEdge, ChainedRedundancy) {
  // Redundant behind a blocker that is itself partitioned: deleting the
  // outer blocker materializes both layers correctly.
  HermesAgent agent(tcam::pica8_p3290(), 4000, test_config());
  agent.insert(0, make_rule(1, 40, "10.0.0.0/8", 1));
  agent.migrate_now(0);
  agent.insert(0, make_rule(2, 30, "10.1.0.0/16", 2));  // redundant under 1
  agent.insert(0, make_rule(3, 20, "10.1.1.0/24", 3));  // redundant under 1
  agent.erase(from_millis(1), 1);
  // Now 2 beats 3 inside 10.1.1.0/24 (higher priority).
  EXPECT_EQ(port_at(agent, "10.1.1.9"), 2);
  EXPECT_EQ(port_at(agent, "10.1.2.9"), 2);
  agent.erase(from_millis(2), 2);
  EXPECT_EQ(port_at(agent, "10.1.1.9"), 3);
  EXPECT_EQ(port_at(agent, "10.1.2.9"), -1);
}

TEST(AgentEdge, AdmittedRateIsSustainableWithoutViolations) {
  // The Equation 2 contract: a controller that stays at the advertised
  // burst rate never sees over-rate rejections or guarantee violations.
  HermesConfig config;
  config.guarantee = from_millis(5);
  HermesAgent agent(tcam::pica8_p3290(), 8192, config);
  double rate = agent.admitted_rate();
  ASSERT_GT(rate, 100);
  Duration gap = from_seconds(1.0 / (rate * 1.05));  // 5% above... inside
  gap = from_seconds(1.0 / (rate * 0.9));            // stay 10% under
  Time now = 0;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 2000; ++i) {
    Rule r{static_cast<net::RuleId>(i + 1),
           100 + static_cast<int>(rng() % 50),
           Prefix(net::Ipv4Address(0x0A000000u +
                                   (static_cast<std::uint32_t>(i) << 8)),
                  24),
           net::forward_to(1)};
    agent.insert(now, r);
    now += gap;
    agent.tick(now);
  }
  EXPECT_EQ(agent.gate_keeper().stats().over_rate, 0u);
  EXPECT_EQ(agent.stats().violations, 0u);
}

TEST(AgentEdge, BurstBeyondAdmittedRateFallsBackNotFails) {
  HermesConfig config;
  config.guarantee = from_millis(5);
  config.token_rate = 100;  // tiny contract
  config.token_burst = 10;
  HermesAgent agent(tcam::pica8_p3290(), 8192, config);
  Time now = 0;
  for (int i = 0; i < 200; ++i) {
    Rule r{static_cast<net::RuleId>(i + 1), 100 + i,
           Prefix(net::Ipv4Address(0x0A000000u +
                                   (static_cast<std::uint32_t>(i) << 8)),
                  24),
           net::forward_to(1)};
    agent.insert(now, r);  // all at t=0: way over-rate
  }
  // The first rule lands in the empty main table via the Section 4.2
  // shortcut (no token spent); 10 more are admitted (burst), the rest are
  // served best-effort via the main table.
  EXPECT_EQ(agent.gate_keeper().stats().lowest_priority, 1u);
  EXPECT_EQ(agent.gate_keeper().stats().guaranteed, 10u);
  EXPECT_EQ(agent.gate_keeper().stats().over_rate, 189u);
  EXPECT_EQ(agent.main_occupancy() + agent.shadow_occupancy(), 200);
  // Over-rate traffic is NOT a violation of the contract.
  EXPECT_EQ(agent.stats().violations, 0u);
}

TEST(AgentEdge, ModifyActionOnPartitionedRuleUpdatesAllPieces) {
  HermesAgent agent(tcam::pica8_p3290(), 4000, test_config());
  agent.insert(0, make_rule(1, 30, "10.0.0.0/26", 1));
  agent.migrate_now(0);
  agent.insert(0, make_rule(2, 10, "10.0.0.0/24", 2));  // pieces in shadow
  agent.modify(from_millis(1), make_rule(2, 10, "10.0.0.0/24", 9));
  EXPECT_EQ(port_at(agent, "10.0.0.200"), 9);
  EXPECT_EQ(port_at(agent, "10.0.0.128"), 9);
  EXPECT_EQ(port_at(agent, "10.0.0.5"), 1);  // blocker untouched
}

TEST(AgentEdge, EraseIsIdempotentOnTables) {
  HermesAgent agent(tcam::pica8_p3290(), 4000, test_config());
  agent.insert(0, make_rule(1, 10, "10.0.0.0/8", 1));
  agent.erase(from_millis(1), 1);
  agent.erase(from_millis(2), 1);  // second delete: failed op, no damage
  EXPECT_EQ(agent.stats().failed_ops, 1u);
  EXPECT_EQ(agent.shadow_occupancy() + agent.main_occupancy(), 0);
}

TEST(AgentEdge, StatsPiecesSavedByMergeAccumulates) {
  // A rule whose blocker disappears before migration: at migration time
  // re-partitioning produces FEWER pieces than installed, which the
  // optimizer counts as savings.
  HermesAgent agent(tcam::pica8_p3290(), 4000, test_config());
  agent.insert(0, make_rule(1, 30, "10.0.0.64/26", 1));
  agent.migrate_now(0);
  agent.insert(0, make_rule(2, 10, "10.0.0.0/24", 2));  // cut into pieces
  ASSERT_GT(agent.shadow_occupancy(), 1);
  agent.erase(from_millis(1), 1);  // blocker gone; un-partition restores
  agent.migrate_now(from_millis(2));
  EXPECT_EQ(agent.main_occupancy(), 1);  // single consolidated rule
  EXPECT_EQ(port_at(agent, "10.0.0.70"), 2);
}

TEST(AgentEdge, LookupAcrossSlicesAfterPartialMigration) {
  // Some rules migrated, some still in shadow: the logical view stays
  // coherent.
  HermesConfig config = test_config();
  config.shadow_capacity = 64;
  HermesAgent agent(tcam::pica8_p3290(), 4000, config);
  for (int i = 0; i < 20; ++i)
    agent.insert(0, make_rule(static_cast<net::RuleId>(i + 1), 10 + i,
                              "10." + std::to_string(i) + ".0.0/16",
                              i + 1));
  agent.migrate_now(from_millis(1));
  for (int i = 20; i < 40; ++i)
    agent.insert(from_millis(2),
                 make_rule(static_cast<net::RuleId>(i + 1), 10 + i,
                           "10." + std::to_string(i) + ".0.0/16", i + 1));
  ASSERT_GT(agent.shadow_occupancy(), 0);
  ASSERT_GT(agent.main_occupancy(), 0);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(port_at(agent, "10." + std::to_string(i) + ".1.1"), i + 1);
  }
}

}  // namespace
}  // namespace hermes::core
